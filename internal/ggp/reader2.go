package ggp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync/atomic"

	"graingraph/internal/cache"
	"graingraph/internal/colenc"
	"graingraph/internal/core"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/runpool"
)

// Decoded is the result of decoding an artifact of either format version.
// For v2 artifacts it carries the materialized grain graph and any fresh
// derived-index sidecars alongside the trace; for v1 artifacts only the
// trace is populated and callers rebuild everything, exactly as before.
type Decoded struct {
	// Version is the artifact's format version (1 or 2).
	Version int
	// Trace is the decoded, validated trace.
	Trace *profile.Trace
	// ContentKey identifies the artifact's content sections (v2 only);
	// sidecars written later must carry this key to be trusted.
	ContentKey uint32
	// SidecarStale reports that at least one sidecar was present but
	// discarded — its content key or format version did not match the
	// graph sections, so the derived data was rebuilt rather than trusted.
	SidecarStale bool

	graph     atomic.Pointer[core.Graph]
	lodData   []byte
	queryData []byte
	hadLevels bool
}

// TakeGraph hands out the decoded grain graph exactly once and nil after
// that (and always nil for v1 artifacts). Analysis mutates derived graph
// state (critical-path marks, layout geometry), so a decoded graph must
// not be shared between independent analyses; a caller that misses the
// hand-off rebuilds deterministically with core.Build.
func (d *Decoded) TakeGraph() *core.Graph {
	if d == nil {
		return nil
	}
	return d.graph.Swap(nil)
}

// LodSidecar returns the encoded lod summary index persisted with the
// artifact, or nil if absent or stale. The slice aliases the decoded
// buffer: read, don't mutate.
func (d *Decoded) LodSidecar() []byte { return d.lodData }

// QuerySidecar returns the encoded query metric table persisted with the
// artifact, or nil if absent or stale. The slice aliases the decoded
// buffer: read, don't mutate.
func (d *Decoded) QuerySidecar() []byte { return d.queryData }

// HasSidecars reports whether the artifact carried a complete, fresh set
// of derived-index sidecars (levels, lod, query) — the signal the serving
// layer uses to decide whether an in-place upgrade is worthwhile.
func (d *Decoded) HasSidecars() bool {
	return d.hadLevels && d.lodData != nil && d.queryData != nil
}

// Decode decodes an artifact of either format version. v1 streams go
// through the event-stream reader; v2 streams decode their column
// sections in parallel on pool (nil or single-worker pools decode
// serially, byte-identically). Section decode is reported as child spans
// of sp (decode:tasks, decode:nodes, decode:edges, decode:sidecar:*…) so
// phase profiles attribute the cold path section by section. The returned
// trace is checksum-verified and validated; corrupt input of either
// version yields a structured error, never a panic.
func Decode(data []byte, pool *runpool.Runner, sp *obs.Span) (*Decoded, error) {
	if len(data) < len(Magic)+1 {
		return nil, fmt.Errorf("%w: %d-byte stream has no header", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrMagic
	}
	switch v := data[len(Magic)]; v {
	case Version:
		csp := sp.Child("decode:v1stream")
		tr, err := ReadTrace(bytes.NewReader(data))
		csp.End()
		if err != nil {
			return nil, err
		}
		return &Decoded{Version: 1, Trace: tr}, nil
	case Version2:
		return decodeV2(data, pool, sp, true)
	default:
		return nil, fmt.Errorf("%w: artifact version %d, reader supports <= %d",
			ErrVersion, v, Version2)
	}
}

// DecodeFile decodes the artifact at path with Decode.
func DecodeFile(path string, pool *runpool.Runner, sp *obs.Span) (*Decoded, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data, pool, sp)
}

// DecodeTrace decodes only the trace from an artifact of either version,
// skipping graph and sidecar materialization (their checksums are still
// verified, so corruption anywhere in the artifact is detected). The
// replay engine uses this: it re-analyzes traces under varied
// configurations, so a prebuilt graph would go unused.
func DecodeTrace(data []byte, pool *runpool.Runner, sp *obs.Span) (*profile.Trace, error) {
	if len(data) < len(Magic)+1 {
		return nil, fmt.Errorf("%w: %d-byte stream has no header", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrMagic
	}
	switch v := data[len(Magic)]; v {
	case Version:
		return ReadTrace(bytes.NewReader(data))
	case Version2:
		d, err := decodeV2(data, pool, sp, false)
		if err != nil {
			return nil, err
		}
		return d.Trace, nil
	default:
		return nil, fmt.Errorf("%w: artifact version %d, reader supports <= %d",
			ErrVersion, v, Version2)
	}
}

// DecodeTraceFile decodes only the trace from the artifact at path.
func DecodeTraceFile(path string, pool *runpool.Runner, sp *obs.Span) (*profile.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeTrace(data, pool, sp)
}

// v2Section is one framed section: a payload subslice of the input buffer
// plus its stored checksum. Payloads are verified inside the parallel
// decode jobs, not during the serial walk, so checksum cost parallelizes
// with decode cost.
type v2Section struct {
	id      byte
	payload []byte
	crc     uint32
}

// decodeV2 walks the section frames serially (cheap — payloads are
// subslices), verifies the trailer's content key against the stored
// per-section checksums, then decodes all sections in parallel on pool.
func decodeV2(data []byte, pool *runpool.Runner, sp *obs.Span, full bool) (*Decoded, error) {
	secs, key, err := walkV2(data)
	if err != nil {
		return nil, err
	}
	byID := make(map[byte]*v2Section, len(secs))
	for i := range secs {
		s := &secs[i]
		if s.id == secV2Trailer {
			continue
		}
		if _, dup := byID[s.id]; dup && v2Known(s.id) {
			return nil, fmt.Errorf("ggp: duplicate section 0x%02x", s.id)
		}
		byID[s.id] = s
	}
	for _, id := range []byte{secV2Meta, secV2Tasks, secV2Frags, secV2Bounds, secV2Loops, secV2Chunks, secV2Bookkeeps} {
		if byID[id] == nil {
			return nil, fmt.Errorf("%w: missing section 0x%02x", ErrTruncated, id)
		}
	}
	if full {
		for _, id := range []byte{secV2Nodes, secV2NodeCounters, secV2Edges} {
			if byID[id] == nil {
				return nil, fmt.Errorf("%w: missing section 0x%02x", ErrTruncated, id)
			}
		}
	}

	dec := &Decoded{Version: 2, ContentKey: key}
	var (
		meta    v2Meta
		workers v2WorkersCols
		tasks   v2TaskCols
		frags   v2FragCols
		bounds  v2BoundCols
		loops   v2LoopCols
		chunks  v2ChunkCols
		bks     v2BookkeepCols
		nodes   v2NodeCols
		nodeCtr [7][]uint64
		edges   v2EdgeCols
		levels  v2LevelCols
		stale   atomic.Bool
	)

	type job struct {
		name string
		run  func(s *v2Section) error
		sec  *v2Section
	}
	var jobs []job
	add := func(name string, s *v2Section, run func(s *v2Section) error) {
		if s != nil {
			jobs = append(jobs, job{name: name, run: run, sec: s})
		}
	}
	// verifyOnly checks a section's checksum without materializing it —
	// used for unknown sections and, in trace-only mode, for the graph
	// sections, so corruption is detected either way.
	verifyOnly := func(s *v2Section) error { return verifyV2(s) }

	add("decode:meta", byID[secV2Meta], func(s *v2Section) error { return meta.decode(s) })
	add("decode:workers", byID[secV2Workers], func(s *v2Section) error { return workers.decode(s) })
	add("decode:tasks", byID[secV2Tasks], func(s *v2Section) error { return tasks.decode(s) })
	add("decode:frags", byID[secV2Frags], func(s *v2Section) error { return frags.decode(s) })
	add("decode:bounds", byID[secV2Bounds], func(s *v2Section) error { return bounds.decode(s) })
	add("decode:loops", byID[secV2Loops], func(s *v2Section) error { return loops.decode(s) })
	add("decode:chunks", byID[secV2Chunks], func(s *v2Section) error { return chunks.decode(s) })
	add("decode:bookkeeps", byID[secV2Bookkeeps], func(s *v2Section) error { return bks.decode(s) })
	if full {
		add("decode:nodes", byID[secV2Nodes], func(s *v2Section) error { return nodes.decode(s) })
		add("decode:nodes", byID[secV2NodeCounters], func(s *v2Section) error {
			return decodeV2Counters(s, &nodeCtr)
		})
		add("decode:edges", byID[secV2Edges], func(s *v2Section) error { return edges.decode(s) })
		add("decode:sidecar:levels", byID[secV2Levels], func(s *v2Section) error {
			body, ok, err := sidecarBody(s, key)
			if err != nil {
				return err
			}
			if !ok {
				stale.Store(true)
				return nil
			}
			if lerr := levels.decode(body); lerr != nil {
				// CRC-valid but structurally off: treat like a stale
				// sidecar (rebuild), never trust it.
				stale.Store(true)
				levels = v2LevelCols{}
			}
			return nil
		})
		add("decode:sidecar:lod", byID[secV2Lod], func(s *v2Section) error {
			body, ok, err := sidecarBody(s, key)
			if err != nil {
				return err
			}
			if !ok {
				stale.Store(true)
				return nil
			}
			dec.lodData = body
			return nil
		})
		add("decode:sidecar:query", byID[secV2Query], func(s *v2Section) error {
			body, ok, err := sidecarBody(s, key)
			if err != nil {
				return err
			}
			if !ok {
				stale.Store(true)
				return nil
			}
			dec.queryData = body
			return nil
		})
	} else {
		for _, id := range []byte{secV2Nodes, secV2NodeCounters, secV2Edges, secV2Levels, secV2Lod, secV2Query} {
			add("decode:verify", byID[id], verifyOnly)
		}
	}
	for i := range secs {
		s := &secs[i]
		if !v2Known(s.id) && s.id != secV2Trailer {
			add("decode:verify", s, verifyOnly)
		}
	}

	if _, err := runpool.Map(pool, len(jobs), func(i int) (struct{}, error) {
		j := jobs[i]
		csp := sp.Child(j.name)
		err := j.run(j.sec)
		csp.End()
		if err != nil {
			return struct{}{}, fmt.Errorf("ggp: section 0x%02x: %w", j.sec.id, err)
		}
		return struct{}{}, nil
	}); err != nil {
		return nil, err
	}
	dec.SidecarStale = stale.Load()

	asp := sp.Child("assemble:trace")
	tr, err := assembleV2Trace(&meta, &workers, &tasks, &frags, &bounds, &loops, &chunks, &bks)
	asp.End()
	if err != nil {
		return nil, err
	}
	dec.Trace = tr

	if full {
		gsp := sp.Child("assemble:graph")
		g, hadLevels, lerr := assembleV2Graph(tr, &meta, &nodes, &nodeCtr, &edges, &levels)
		gsp.End()
		if lerr != nil {
			return nil, lerr
		}
		if levels.off != nil && !hadLevels {
			// Level sidecar rejected during adoption: rebuild later.
			dec.SidecarStale = true
		}
		dec.hadLevels = hadLevels
		dec.graph.Store(g)
	}
	return dec, nil
}

// walkV2 frames the section list and verifies the trailer: its own
// checksum, its section count, and the content key recomputed from the
// stored per-section checksums of the content sections. Payload checksums
// are deferred to the parallel decode.
func walkV2(data []byte) ([]v2Section, uint32, error) {
	off := len(Magic) + 1
	var secs []v2Section
	var crcs []byte
	sawTrailer := false
	var key uint32
	for !sawTrailer {
		if off >= len(data) {
			return nil, 0, fmt.Errorf("%w: stream ends before trailer", ErrTruncated)
		}
		id := data[off]
		off++
		size, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("%w: unterminated section length", ErrTruncated)
		}
		off += n
		if size > uint64(len(data)-off) || len(data)-off-int(size) < 4 {
			return nil, 0, fmt.Errorf("%w: section 0x%02x length %d exceeds stream", ErrTruncated, id, size)
		}
		payload := data[off : off+int(size) : off+int(size)]
		off += int(size)
		stored := binary.LittleEndian.Uint32(data[off:])
		off += 4
		secs = append(secs, v2Section{id: id, payload: payload, crc: stored})
		switch {
		case id == secV2Trailer:
			sawTrailer = true
			if crc32.Checksum(payload, castagnoli) != stored {
				return nil, 0, fmt.Errorf("%w: trailer checksum", ErrCRC)
			}
			d := colenc.NewReader(payload)
			if len(payload) < 4 {
				return nil, 0, fmt.Errorf("%w: trailer payload is %d bytes", ErrCRC, len(payload))
			}
			key = binary.LittleEndian.Uint32(payload)
			d = colenc.NewReader(payload[4:])
			count, err := d.Uvarint()
			if err != nil {
				return nil, 0, fmt.Errorf("%w: trailer section count", ErrCRC)
			}
			if int(count) != len(secs)-1 {
				return nil, 0, fmt.Errorf("%w: trailer counts %d sections, stream has %d", ErrCRC, count, len(secs)-1)
			}
		case isV2Sidecar(id):
			// Sidecars do not feed the content key.
		default:
			crcs = binary.LittleEndian.AppendUint32(crcs, stored)
		}
	}
	if got := crc32.Checksum(crcs, castagnoli); got != key {
		return nil, 0, fmt.Errorf("%w: content key computed %08x, stored %08x", ErrCRC, got, key)
	}
	return secs, key, nil
}

func v2Known(id byte) bool {
	switch id {
	case secV2Meta, secV2Workers, secV2Tasks, secV2Frags, secV2Bounds, secV2Loops,
		secV2Chunks, secV2Bookkeeps, secV2Nodes, secV2NodeCounters, secV2Edges,
		secV2Levels, secV2Lod, secV2Query:
		return true
	}
	return false
}

func verifyV2(s *v2Section) error {
	if crc32.Checksum(s.payload, castagnoli) != s.crc {
		return ErrCRC
	}
	return nil
}

// sidecarBody verifies a sidecar section and unwraps its payload header.
// ok=false (with no error) means the sidecar is intact but not trustworthy
// — wrong format version or content key — and must be discarded.
func sidecarBody(s *v2Section, key uint32) (body []byte, ok bool, err error) {
	if err := verifyV2(s); err != nil {
		return nil, false, err
	}
	if len(s.payload) < 5 {
		return nil, false, fmt.Errorf("sidecar payload is %d bytes, want >= 5", len(s.payload))
	}
	if s.payload[0] != sidecarFormatVersion {
		return nil, false, nil
	}
	if binary.LittleEndian.Uint32(s.payload[1:]) != key {
		return nil, false, nil
	}
	return s.payload[5:], true, nil
}

// ---- per-section column holders ----

type v2Meta struct {
	program, scheduler, flavor, pagePolicy string
	cores, sockets                         int
	start, end                             profile.Time
	nTasks, nLoops, nChunks, nBookkeeps    int
	nNodes, nEdges                         int
}

func (m *v2Meta) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if m.program, err = d.Str(); err != nil {
		return err
	}
	u := func(dst *int) error {
		v, err := d.Uvarint()
		if err != nil {
			return err
		}
		if v > math.MaxInt32 {
			return fmt.Errorf("meta count %d out of range", v)
		}
		*dst = int(v)
		return nil
	}
	if err = u(&m.cores); err != nil {
		return err
	}
	if err = u(&m.sockets); err != nil {
		return err
	}
	if m.scheduler, err = d.Str(); err != nil {
		return err
	}
	if m.flavor, err = d.Str(); err != nil {
		return err
	}
	if m.pagePolicy, err = d.Str(); err != nil {
		return err
	}
	if m.start, err = d.Uvarint(); err != nil {
		return err
	}
	if m.end, err = d.Uvarint(); err != nil {
		return err
	}
	for _, dst := range []*int{&m.nTasks, &m.nLoops, &m.nChunks, &m.nBookkeeps, &m.nNodes, &m.nEdges} {
		if err = u(dst); err != nil {
			return err
		}
	}
	if !d.Done() {
		return fmt.Errorf("meta carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2WorkersCols struct {
	busy, over []uint64
}

func (w *v2WorkersCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if w.busy, err = d.U64s(); err != nil {
		return err
	}
	if w.over, err = d.U64s(); err != nil {
		return err
	}
	if len(w.busy) != len(w.over) {
		return fmt.Errorf("worker columns disagree (%d/%d)", len(w.busy), len(w.over))
	}
	if !d.Done() {
		return fmt.Errorf("workers carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2TaskCols struct {
	ids, parents, locFile, locFunc []string
	locLine, depth, createdBy      []int64
	createTime, createCost         []uint64
	startTime, endTime             []uint64
	inlined                        []bool
	fragOff, boundOff              []uint32
}

func (t *v2TaskCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if t.ids, err = d.Strs(); err != nil {
		return err
	}
	if t.parents, err = d.Strs(); err != nil {
		return err
	}
	if t.locFile, err = d.Strs(); err != nil {
		return err
	}
	if t.locLine, err = d.I64sVar(); err != nil {
		return err
	}
	if t.locFunc, err = d.Strs(); err != nil {
		return err
	}
	if t.depth, err = d.I64sVar(); err != nil {
		return err
	}
	if t.createTime, err = d.U64s(); err != nil {
		return err
	}
	if t.createCost, err = d.U64s(); err != nil {
		return err
	}
	if t.createdBy, err = d.I64sVar(); err != nil {
		return err
	}
	if t.startTime, err = d.U64s(); err != nil {
		return err
	}
	if t.endTime, err = d.U64s(); err != nil {
		return err
	}
	if t.inlined, err = d.Bools(); err != nil {
		return err
	}
	if t.fragOff, err = d.U32s(); err != nil {
		return err
	}
	if t.boundOff, err = d.U32s(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("tasks carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2FragCols struct {
	start, end []uint64
	core       []int64
	ctr        [7][]uint64
}

func (f *v2FragCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if f.start, err = d.U64s(); err != nil {
		return err
	}
	if f.end, err = d.U64s(); err != nil {
		return err
	}
	if f.core, err = d.I64sVar(); err != nil {
		return err
	}
	for i := range f.ctr {
		if f.ctr[i], err = d.U64sVar(); err != nil {
			return err
		}
	}
	if !d.Done() {
		return fmt.Errorf("fragments carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2BoundCols struct {
	kind           []uint8
	at, wait, susp []uint64
	child, joined  []string
	loop           []int64
	joinedOff      []uint32
}

func (b *v2BoundCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if b.kind, err = d.U8s(); err != nil {
		return err
	}
	if b.at, err = d.U64s(); err != nil {
		return err
	}
	if b.child, err = d.Strs(); err != nil {
		return err
	}
	if b.wait, err = d.U64s(); err != nil {
		return err
	}
	if b.susp, err = d.U64s(); err != nil {
		return err
	}
	if b.loop, err = d.I64sVar(); err != nil {
		return err
	}
	if b.joinedOff, err = d.U32s(); err != nil {
		return err
	}
	if b.joined, err = d.Strs(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("boundaries carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2LoopCols struct {
	id, locLine, chunkSize, lo, hi, startThread, threads []int64
	locFile, locFunc                                     []string
	sched                                                []uint8
	start, end                                           []uint64
	threadOff                                            []uint32
}

func (l *v2LoopCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if l.id, err = d.I64sVar(); err != nil {
		return err
	}
	if l.locFile, err = d.Strs(); err != nil {
		return err
	}
	if l.locLine, err = d.I64sVar(); err != nil {
		return err
	}
	if l.locFunc, err = d.Strs(); err != nil {
		return err
	}
	if l.sched, err = d.U8s(); err != nil {
		return err
	}
	if l.chunkSize, err = d.I64sVar(); err != nil {
		return err
	}
	if l.lo, err = d.I64sVar(); err != nil {
		return err
	}
	if l.hi, err = d.I64sVar(); err != nil {
		return err
	}
	if l.start, err = d.U64s(); err != nil {
		return err
	}
	if l.end, err = d.U64s(); err != nil {
		return err
	}
	if l.startThread, err = d.I64sVar(); err != nil {
		return err
	}
	if l.threadOff, err = d.U32s(); err != nil {
		return err
	}
	if l.threads, err = d.I64sVar(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("loops carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2ChunkCols struct {
	loop, seq, thread, lo, hi []int64
	start, end, bookkeep      []uint64
	ctr                       [7][]uint64
}

func (c *v2ChunkCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if c.loop, err = d.I64sVar(); err != nil {
		return err
	}
	if c.seq, err = d.I64sVar(); err != nil {
		return err
	}
	if c.thread, err = d.I64sVar(); err != nil {
		return err
	}
	if c.lo, err = d.I64sVar(); err != nil {
		return err
	}
	if c.hi, err = d.I64sVar(); err != nil {
		return err
	}
	if c.start, err = d.U64s(); err != nil {
		return err
	}
	if c.end, err = d.U64s(); err != nil {
		return err
	}
	if c.bookkeep, err = d.U64sVar(); err != nil {
		return err
	}
	for i := range c.ctr {
		if c.ctr[i], err = d.U64sVar(); err != nil {
			return err
		}
	}
	if !d.Done() {
		return fmt.Errorf("chunks carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2BookkeepCols struct {
	loop, thread, grabs []int64
	total               []uint64
}

func (b *v2BookkeepCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if b.loop, err = d.I64sVar(); err != nil {
		return err
	}
	if b.thread, err = d.I64sVar(); err != nil {
		return err
	}
	if b.grabs, err = d.I64sVar(); err != nil {
		return err
	}
	if b.total, err = d.U64sVar(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("bookkeeps carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2NodeCols struct {
	dict                     []string
	kind                     []uint8
	grainRef                 []uint32
	loop, seq, core, members []int64
	label                    []string
	start, end, weight       []uint64
}

func (n *v2NodeCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if n.dict, err = d.Strs(); err != nil {
		return err
	}
	if n.kind, err = d.U8s(); err != nil {
		return err
	}
	if n.grainRef, err = d.U32s(); err != nil {
		return err
	}
	if n.loop, err = d.I64sVar(); err != nil {
		return err
	}
	if n.seq, err = d.I64sVar(); err != nil {
		return err
	}
	if n.core, err = d.I64sVar(); err != nil {
		return err
	}
	if n.members, err = d.I64sVar(); err != nil {
		return err
	}
	if n.label, err = d.Strs(); err != nil {
		return err
	}
	if n.start, err = d.U64s(); err != nil {
		return err
	}
	if n.end, err = d.U64s(); err != nil {
		return err
	}
	if n.weight, err = d.U64s(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("nodes carries %d trailing bytes", d.Remaining())
	}
	return nil
}

func decodeV2Counters(s *v2Section, out *[7][]uint64) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	for i := range out {
		if out[i], err = d.U64sVar(); err != nil {
			return err
		}
	}
	if !d.Done() {
		return fmt.Errorf("node counters carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2EdgeCols struct {
	from, to    []uint32
	kind        []uint8
	first, last []int64
}

func (e *v2EdgeCols) decode(s *v2Section) error {
	if err := verifyV2(s); err != nil {
		return err
	}
	d := colenc.NewReader(s.payload)
	var err error
	if e.from, err = d.U32s(); err != nil {
		return err
	}
	if e.to, err = d.U32s(); err != nil {
		return err
	}
	if e.kind, err = d.U8s(); err != nil {
		return err
	}
	if e.first, err = d.I64sVar(); err != nil {
		return err
	}
	if e.last, err = d.I64sVar(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("edges carries %d trailing bytes", d.Remaining())
	}
	return nil
}

type v2LevelCols struct {
	off, nodes []uint32
	level      []uint64
}

func (l *v2LevelCols) decode(body []byte) error {
	d := colenc.NewReader(body)
	var err error
	if l.off, err = d.U32s(); err != nil {
		return err
	}
	if l.nodes, err = d.U32s(); err != nil {
		return err
	}
	if l.level, err = d.U64sVar(); err != nil {
		return err
	}
	if !d.Done() {
		return fmt.Errorf("levels carries %d trailing bytes", d.Remaining())
	}
	return nil
}

// ---- assembly ----

// checkOffsets validates a CSR offset column: n+1 monotonic entries from 0
// to total.
func checkOffsets(name string, off []uint32, n, total int) error {
	if len(off) != n+1 {
		return fmt.Errorf("ggp: %s offsets have %d entries, want %d", name, len(off), n+1)
	}
	if off[0] != 0 || int(off[n]) != total {
		return fmt.Errorf("ggp: %s offsets span [%d,%d], want [0,%d]", name, off[0], off[n], total)
	}
	for i := 0; i < n; i++ {
		if off[i+1] < off[i] {
			return fmt.Errorf("ggp: %s offsets not monotonic at %d", name, i)
		}
	}
	return nil
}

// sameLen validates that every named column has exactly n rows.
func sameLen(section string, n int, cols map[string]int) error {
	for name, l := range cols {
		if l != n {
			return fmt.Errorf("ggp: %s column %s has %d rows, want %d", section, name, l, n)
		}
	}
	return nil
}

func countersAt(ctr *[7][]uint64, i int) cache.Counters {
	return cache.Counters{
		Accesses: ctr[0][i],
		L1Miss:   ctr[1][i],
		L2Miss:   ctr[2][i],
		L3Miss:   ctr[3][i],
		Remote:   ctr[4][i],
		Stall:    ctr[5][i],
		Compute:  ctr[6][i],
	}
}

func checkCtr(section string, ctr *[7][]uint64, n int) error {
	for i := range ctr {
		if len(ctr[i]) != n {
			return fmt.Errorf("ggp: %s counter column %d has %d rows, want %d", section, i, len(ctr[i]), n)
		}
	}
	return nil
}

func toInt(section string, v []int64) ([]int, error) {
	out := make([]int, len(v))
	for i, x := range v {
		if x < math.MinInt32 || x > math.MaxInt32 {
			return nil, fmt.Errorf("ggp: %s value %d out of range", section, x)
		}
		out[i] = int(x)
	}
	return out, nil
}

func assembleV2Trace(meta *v2Meta, workers *v2WorkersCols, tc *v2TaskCols, fc *v2FragCols,
	bc *v2BoundCols, lc *v2LoopCols, cc *v2ChunkCols, kc *v2BookkeepCols) (*profile.Trace, error) {

	nT := meta.nTasks
	if err := sameLen("tasks", nT, map[string]int{
		"ids": len(tc.ids), "parents": len(tc.parents), "locFile": len(tc.locFile),
		"locLine": len(tc.locLine), "locFunc": len(tc.locFunc), "depth": len(tc.depth),
		"createTime": len(tc.createTime), "createCost": len(tc.createCost),
		"createdBy": len(tc.createdBy), "startTime": len(tc.startTime),
		"endTime": len(tc.endTime), "inlined": len(tc.inlined),
	}); err != nil {
		return nil, err
	}
	nF := len(fc.start)
	if err := sameLen("fragments", nF, map[string]int{"end": len(fc.end), "core": len(fc.core)}); err != nil {
		return nil, err
	}
	if err := checkCtr("fragments", &fc.ctr, nF); err != nil {
		return nil, err
	}
	nB := len(bc.kind)
	if err := sameLen("boundaries", nB, map[string]int{
		"at": len(bc.at), "child": len(bc.child), "wait": len(bc.wait),
		"susp": len(bc.susp), "loop": len(bc.loop),
	}); err != nil {
		return nil, err
	}
	if err := checkOffsets("fragment", tc.fragOff, nT, nF); err != nil {
		return nil, err
	}
	if err := checkOffsets("boundary", tc.boundOff, nT, nB); err != nil {
		return nil, err
	}
	if err := checkOffsets("joined", bc.joinedOff, nB, len(bc.joined)); err != nil {
		return nil, err
	}
	nL := meta.nLoops
	if err := sameLen("loops", nL, map[string]int{
		"id": len(lc.id), "locFile": len(lc.locFile), "locLine": len(lc.locLine),
		"locFunc": len(lc.locFunc), "sched": len(lc.sched), "chunkSize": len(lc.chunkSize),
		"lo": len(lc.lo), "hi": len(lc.hi), "start": len(lc.start), "end": len(lc.end),
		"startThread": len(lc.startThread),
	}); err != nil {
		return nil, err
	}
	if err := checkOffsets("loop thread", lc.threadOff, nL, len(lc.threads)); err != nil {
		return nil, err
	}
	nC := meta.nChunks
	if err := sameLen("chunks", nC, map[string]int{
		"loop": len(cc.loop), "seq": len(cc.seq), "thread": len(cc.thread),
		"lo": len(cc.lo), "hi": len(cc.hi), "start": len(cc.start),
		"end": len(cc.end), "bookkeep": len(cc.bookkeep),
	}); err != nil {
		return nil, err
	}
	if err := checkCtr("chunks", &cc.ctr, nC); err != nil {
		return nil, err
	}
	nK := meta.nBookkeeps
	if err := sameLen("bookkeeps", nK, map[string]int{
		"loop": len(kc.loop), "thread": len(kc.thread), "grabs": len(kc.grabs), "total": len(kc.total),
	}); err != nil {
		return nil, err
	}

	tr := &profile.Trace{
		Program:    meta.program,
		Cores:      meta.cores,
		Sockets:    meta.sockets,
		Scheduler:  meta.scheduler,
		Flavor:     meta.flavor,
		PagePolicy: meta.pagePolicy,
		Start:      meta.start,
		End:        meta.end,
	}
	if n := len(workers.busy); n > 0 {
		tr.Workers = make([]profile.WorkerStat, n)
		for i := range tr.Workers {
			tr.Workers[i] = profile.WorkerStat{Busy: workers.busy[i], Overhead: workers.over[i]}
		}
	}

	frags := make([]profile.Fragment, nF)
	for i := range frags {
		frags[i] = profile.Fragment{
			Start:    fc.start[i],
			End:      fc.end[i],
			Core:     int(fc.core[i]),
			Counters: countersAt(&fc.ctr, i),
		}
	}
	joined := make([]profile.GrainID, len(bc.joined))
	for i, s := range bc.joined {
		joined[i] = profile.GrainID(s)
	}
	bounds := make([]profile.Boundary, nB)
	for i := range bounds {
		if bc.kind[i] > uint8(profile.BoundaryLoop) {
			return nil, fmt.Errorf("ggp: unknown boundary kind %d", bc.kind[i])
		}
		b := profile.Boundary{
			Kind:      profile.BoundaryKind(bc.kind[i]),
			At:        bc.at[i],
			Child:     profile.GrainID(bc.child[i]),
			Wait:      bc.wait[i],
			Suspended: bc.susp[i],
			Loop:      profile.LoopID(bc.loop[i]),
		}
		if lo, hi := bc.joinedOff[i], bc.joinedOff[i+1]; hi > lo {
			b.Joined = joined[lo:hi:hi]
		}
		bounds[i] = b
	}

	tasks := make([]profile.TaskRecord, nT)
	tr.Tasks = make([]*profile.TaskRecord, nT)
	for i := range tasks {
		t := &tasks[i]
		t.ID = profile.GrainID(tc.ids[i])
		t.Parent = profile.GrainID(tc.parents[i])
		t.Loc = profile.SrcLoc{File: tc.locFile[i], Line: int(tc.locLine[i]), Func: tc.locFunc[i]}
		t.Depth = int(tc.depth[i])
		t.CreateTime = tc.createTime[i]
		t.CreateCost = tc.createCost[i]
		t.CreatedBy = int(tc.createdBy[i])
		t.StartTime = tc.startTime[i]
		t.EndTime = tc.endTime[i]
		t.Inlined = tc.inlined[i]
		if lo, hi := tc.fragOff[i], tc.fragOff[i+1]; hi > lo {
			t.Fragments = frags[lo:hi:hi]
		}
		if lo, hi := tc.boundOff[i], tc.boundOff[i+1]; hi > lo {
			t.Boundaries = bounds[lo:hi:hi]
		}
		tr.Tasks[i] = t
	}

	if nL > 0 {
		threads, err := toInt("loop threads", lc.threads)
		if err != nil {
			return nil, err
		}
		loops := make([]profile.LoopRecord, nL)
		tr.Loops = make([]*profile.LoopRecord, nL)
		for i := range loops {
			if lc.sched[i] > uint8(profile.ScheduleGuided) {
				return nil, fmt.Errorf("ggp: unknown loop schedule %d", lc.sched[i])
			}
			l := &loops[i]
			l.ID = profile.LoopID(lc.id[i])
			l.Loc = profile.SrcLoc{File: lc.locFile[i], Line: int(lc.locLine[i]), Func: lc.locFunc[i]}
			l.Schedule = profile.ScheduleKind(lc.sched[i])
			l.ChunkSize = int(lc.chunkSize[i])
			l.Lo = int(lc.lo[i])
			l.Hi = int(lc.hi[i])
			l.Start = lc.start[i]
			l.End = lc.end[i]
			l.StartThread = int(lc.startThread[i])
			if lo, hi := lc.threadOff[i], lc.threadOff[i+1]; hi > lo {
				l.Threads = threads[lo:hi:hi]
			}
			tr.Loops[i] = l
		}
	}

	if nC > 0 {
		chunks := make([]profile.ChunkRecord, nC)
		tr.Chunks = make([]*profile.ChunkRecord, nC)
		for i := range chunks {
			c := &chunks[i]
			c.Loop = profile.LoopID(cc.loop[i])
			c.Seq = int(cc.seq[i])
			c.Thread = int(cc.thread[i])
			c.Lo = int(cc.lo[i])
			c.Hi = int(cc.hi[i])
			c.Start = cc.start[i]
			c.End = cc.end[i]
			c.Bookkeep = cc.bookkeep[i]
			c.Counters = countersAt(&cc.ctr, i)
			tr.Chunks[i] = c
		}
	}

	if nK > 0 {
		bks := make([]profile.BookkeepRecord, nK)
		tr.Bookkeeps = make([]*profile.BookkeepRecord, nK)
		for i := range bks {
			b := &bks[i]
			b.Loop = profile.LoopID(kc.loop[i])
			b.Thread = int(kc.thread[i])
			b.Grabs = int(kc.grabs[i])
			b.Total = kc.total[i]
			tr.Bookkeeps[i] = b
		}
	}

	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("ggp: invalid trace: %w", err)
	}
	return tr, nil
}

func assembleV2Graph(tr *profile.Trace, meta *v2Meta, nc *v2NodeCols, ctr *[7][]uint64,
	ec *v2EdgeCols, lc *v2LevelCols) (*core.Graph, bool, error) {

	nn := meta.nNodes
	ne := meta.nEdges
	if err := sameLen("nodes", nn, map[string]int{
		"kind": len(nc.kind), "grainRef": len(nc.grainRef), "loop": len(nc.loop),
		"seq": len(nc.seq), "core": len(nc.core), "members": len(nc.members),
		"label": len(nc.label), "start": len(nc.start), "end": len(nc.end),
		"weight": len(nc.weight),
	}); err != nil {
		return nil, false, err
	}
	if err := checkCtr("nodes", ctr, nn); err != nil {
		return nil, false, err
	}
	if err := sameLen("edges", ne, map[string]int{
		"from": len(ec.from), "to": len(ec.to), "kind": len(ec.kind),
	}); err != nil {
		return nil, false, err
	}
	dictLen := len(tr.Tasks) + len(tr.Chunks)
	if len(nc.dict) != dictLen {
		return nil, false, fmt.Errorf("ggp: grain dictionary has %d entries, want %d", len(nc.dict), dictLen)
	}
	if len(ec.first) != dictLen || len(ec.last) != dictLen {
		return nil, false, fmt.Errorf("ggp: entry/exit columns have %d/%d entries, want %d", len(ec.first), len(ec.last), dictLen)
	}

	cols := core.GraphColumns{
		Kind:     nc.kind,
		Grain:    make([]profile.GrainID, nn),
		Loop:     make([]int32, nn),
		Seq:      make([]int32, nn),
		Label:    nc.label,
		Start:    nc.start,
		End:      nc.end,
		Weight:   nc.weight,
		Core:     make([]int32, nn),
		Counters: make([]cache.Counters, nn),
		Members:  make([]int32, nn),
		EdgeFrom: make([]int32, ne),
		EdgeTo:   make([]int32, ne),
		EdgeKind: ec.kind,
	}
	for i := 0; i < nn; i++ {
		ref := nc.grainRef[i]
		if int(ref) >= dictLen {
			return nil, false, fmt.Errorf("ggp: node %d grain ref %d out of range [0,%d)", i, ref, dictLen)
		}
		cols.Grain[i] = profile.GrainID(nc.dict[ref])
		for _, c := range [...]struct {
			dst []int32
			src int64
		}{{cols.Loop, nc.loop[i]}, {cols.Seq, nc.seq[i]}, {cols.Core, nc.core[i]}, {cols.Members, nc.members[i]}} {
			if c.src < math.MinInt32 || c.src > math.MaxInt32 {
				return nil, false, fmt.Errorf("ggp: node %d column value %d out of range", i, c.src)
			}
			c.dst[i] = int32(c.src)
		}
		cols.Counters[i] = countersAt(ctr, i)
	}
	for i := 0; i < ne; i++ {
		if ec.from[i] >= uint32(nn) || ec.to[i] >= uint32(nn) {
			return nil, false, fmt.Errorf("ggp: edge %d endpoints (%d,%d) out of range [0,%d)", i, ec.from[i], ec.to[i], nn)
		}
		cols.EdgeFrom[i] = int32(ec.from[i])
		cols.EdgeTo[i] = int32(ec.to[i])
	}

	first := make(map[profile.GrainID]core.NodeID, dictLen)
	last := make(map[profile.GrainID]core.NodeID, dictLen)
	for i := 0; i < dictLen; i++ {
		for _, m := range [...]struct {
			dst map[profile.GrainID]core.NodeID
			src int64
		}{{first, ec.first[i]}, {last, ec.last[i]}} {
			if m.src == -1 {
				continue
			}
			if m.src < 0 || m.src >= int64(nn) {
				return nil, false, fmt.Errorf("ggp: entry/exit node %d out of range [0,%d)", m.src, nn)
			}
			m.dst[profile.GrainID(nc.dict[i])] = core.NodeID(m.src)
		}
	}

	g, err := core.AdoptGraph(tr, cols, first, last)
	if err != nil {
		return nil, false, fmt.Errorf("ggp: %w", err)
	}

	if lc.off == nil {
		return g, false, nil
	}
	// Levels sidecar: adopt with structural validation; rejection means
	// the sidecar was stale or malformed, and the index rebuilds lazily.
	off := make([]int32, len(lc.off))
	nodes := make([]int32, len(lc.nodes))
	level := make([]int32, len(lc.level))
	for i, v := range lc.off {
		if v > math.MaxInt32 {
			return g, false, nil
		}
		off[i] = int32(v)
	}
	for i, v := range lc.nodes {
		if v > math.MaxInt32 {
			return g, false, nil
		}
		nodes[i] = int32(v)
	}
	for i, v := range lc.level {
		if v > math.MaxInt32 {
			return g, false, nil
		}
		level[i] = int32(v)
	}
	if err := g.AdoptLevels(off, nodes, level); err != nil {
		return g, false, nil
	}
	return g, true, nil
}
