// Package benchfmt defines the benchmark-report schema shared by
// grainbench (which writes reports) and benchdiff (which compares them).
//
// A report is one -benchjson invocation: per-figure wall time and engine
// stats, plus — when self-observability is on — a phase breakdown
// aggregated from the analyzer's own spans (internal/obs) and the
// run-pool telemetry. Reports are committed to the repository root as
// dated BENCH_<date>.json files, forming a performance trajectory that
// benchdiff checks new runs against: any phase or figure that got more
// than a threshold slower than the baseline is a regression.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"graingraph/internal/obs"
)

// Figure is one figure's entry in a report.
type Figure struct {
	ID     string  `json:"id"`
	OK     bool    `json:"ok"`
	WallMS float64 `json:"wall_ms"`
	// AnalyzeMS is the analysis-phase wall time (graph build, metrics,
	// highlighting) this figure spent, summed across concurrent runs — it
	// can exceed WallMS at -j > 1.
	AnalyzeMS float64 `json:"analyze_ms"`
	// IngestMS is the artifact-ingest wall time (replay file read +
	// CRC-checked decode) this figure spent; zero unless -replay is on.
	IngestMS float64 `json:"ingest_ms,omitempty"`
	// Simulated counts the rts.Run executions this figure triggered;
	// Memoized counts the run requests it satisfied from the cache.
	Simulated uint64 `json:"simulated_runs"`
	Memoized  uint64 `json:"memoized_runs"`
	// ArtifactDecodes/ArtifactHits count grain-profile artifact decodes
	// executed vs served from the content-hash cache during this figure.
	ArtifactDecodes uint64 `json:"artifact_decodes,omitempty"`
	ArtifactHits    uint64 `json:"artifact_hits,omitempty"`
}

// Phase is the aggregate of every span with one name across the run:
// how many times it executed and its total wall time and allocations.
type Phase struct {
	Name   string  `json:"name"`
	Count  int     `json:"count"`
	WallMS float64 `json:"wall_ms"`
	Allocs uint64  `json:"allocs,omitempty"`
	Bytes  uint64  `json:"bytes,omitempty"`
}

// IngestEntry is one cold-ingest measurement from grainbench
// -ingestbench: decoding one artifact in one format mode to an
// analysis-ready graph (trace + graph + topological levels).
type IngestEntry struct {
	// Artifact is the measured file's base name; Mode is the format path
	// exercised: "v1" (event-stream parse + graph build), "v2" (columnar
	// decode + level build) or "v2+sidecars" (columnar decode, levels
	// adopted from the sidecar).
	Artifact string  `json:"artifact"`
	Mode     string  `json:"mode"`
	Jobs     int     `json:"jobs"`
	WallMS   float64 `json:"wall_ms"`
	Grains   int     `json:"grains"`
	Bytes    int64   `json:"bytes"`
	Note     string  `json:"note,omitempty"`
}

// Report is one -benchjson document.
type Report struct {
	Parallelism int      `json:"parallelism"`
	Cores       int      `json:"cores"`
	WallMS      float64  `json:"wall_ms"`
	AnalyzeMS   float64  `json:"analyze_ms"`
	IngestMS    float64  `json:"ingest_ms,omitempty"`
	Simulated   uint64   `json:"simulated_runs"`
	Memoized    uint64   `json:"memoized_runs"`
	Figures     []Figure `json:"figures"`
	// Phases is the self-observability breakdown, present when the run
	// profiled itself. Sorted by total wall time, heaviest first.
	Phases []Phase `json:"phases,omitempty"`
	// Runpool is the worker/memo telemetry snapshot for the whole run.
	Runpool *obs.PoolSnapshot `json:"runpool,omitempty"`
	// Ingest holds cold-ingest measurements from -ingestbench: the same
	// artifact decoded through each format path, for the committed
	// before/after trajectory of the columnar format work.
	Ingest []IngestEntry `json:"ingest,omitempty"`
}

// Phases aggregates a span profile by name: every span with the same
// name — across figures, trees and nesting levels — folds into one Phase.
// Sorted heaviest-first with name as the deterministic tie-break.
func Phases(prof *obs.Profile) []Phase {
	if prof == nil || len(prof.Spans) == 0 {
		return nil
	}
	idx := map[string]int{}
	var out []Phase
	for _, s := range prof.Spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, Phase{Name: s.Name})
		}
		out[i].Count++
		out[i].WallMS += float64(s.Dur.Nanoseconds()) / 1e6
		out[i].Allocs += s.Allocs
		out[i].Bytes += s.Bytes
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].WallMS != out[b].WallMS {
			return out[a].WallMS > out[b].WallMS
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Read loads a report from path.
func Read(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return &r, nil
}

// Write stores the report as indented JSON (conventionally named
// BENCH_<date>.json at the repo root for the committed trajectory).
func Write(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchfmt: writing report: %w", err)
	}
	return nil
}
