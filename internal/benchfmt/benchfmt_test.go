package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graingraph/internal/obs"
)

func sampleReport() *Report {
	return &Report{
		Parallelism: 4, Cores: 48, WallMS: 1000, AnalyzeMS: 400, IngestMS: 20,
		Simulated: 10, Memoized: 5,
		Figures: []Figure{
			{ID: "2", OK: true, WallMS: 600, AnalyzeMS: 250, Simulated: 6, Memoized: 2},
			{ID: "5", OK: true, WallMS: 400, AnalyzeMS: 150, Simulated: 4, Memoized: 3},
		},
		Phases: []Phase{
			{Name: "metric:critical", Count: 10, WallMS: 200},
			{Name: "build", Count: 10, WallMS: 120},
			{Name: "highlight", Count: 10, WallMS: 3},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sampleReport()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.WallMS != want.WallMS || len(got.Figures) != 2 || len(got.Phases) != 3 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
	if got.Figures[0].ID != "2" || got.Phases[0].Name != "metric:critical" {
		t.Fatalf("round trip reordered entries: %+v", got)
	}
}

func TestPhasesAggregatesByName(t *testing.T) {
	p := obs.New()
	p.TrackMem = false
	for i := 0; i < 3; i++ {
		sp := p.Begin("analyze")
		c := sp.Child("build")
		time.Sleep(time.Millisecond)
		c.End()
		sp.End()
	}
	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	phases := Phases(&obs.Profile{Spans: spans})
	if len(phases) != 2 {
		t.Fatalf("got %d phases, want 2 (analyze, build): %+v", len(phases), phases)
	}
	for _, ph := range phases {
		if ph.Count != 3 {
			t.Errorf("phase %s count = %d, want 3", ph.Name, ph.Count)
		}
		if ph.WallMS <= 0 {
			t.Errorf("phase %s wall = %v, want > 0", ph.Name, ph.WallMS)
		}
	}
	// analyze encloses build, so it sorts first (heaviest).
	if phases[0].Name != "analyze" {
		t.Errorf("heaviest phase = %s, want analyze", phases[0].Name)
	}
	if Phases(nil) != nil || Phases(&obs.Profile{}) != nil {
		t.Error("empty profile should yield no phases")
	}
}

func TestDiffFlagsInjectedSlowdown(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Figures[0].WallMS *= 2  // figure 2 doubles
	cur.Phases[0].WallMS *= 1.5 // metric:critical +50%
	cur.Phases[2].WallMS *= 10  // highlight 3ms -> 30ms, below MinMS floor
	cur.WallMS = 1600           // total rides along
	opt := DiffOptions{ThresholdPct: 25, MinMS: 50}

	regs := Diff(base, cur, opt)
	var metrics []string
	for _, r := range regs {
		metrics = append(metrics, r.Metric)
	}
	joined := strings.Join(metrics, ",")
	for _, want := range []string{"figure 2/wall", "phase metric:critical", "total/wall"} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions %v missing %q", metrics, want)
		}
	}
	if strings.Contains(joined, "highlight") {
		t.Errorf("sub-floor phase flagged: %v", metrics)
	}
	// Worst first: figure 2 (+100%) before metric:critical (+50%).
	if len(regs) > 1 && regs[0].Metric != "figure 2/wall" {
		t.Errorf("regressions not sorted worst-first: %v", metrics)
	}
}

func TestDiffIntersectionSemantics(t *testing.T) {
	base := sampleReport()
	// Smoke run: only figure 2, twice as slow, plus a brand-new phase.
	cur := &Report{
		Parallelism: 4, Cores: 48, WallMS: 1200,
		Figures: []Figure{{ID: "2", OK: true, WallMS: 1200, AnalyzeMS: 250}},
		Phases:  []Phase{{Name: "brand-new", WallMS: 900}},
	}
	regs := Diff(base, cur, DiffOptions{ThresholdPct: 25, MinMS: 50})
	for _, r := range regs {
		if r.Metric == "total/wall" {
			t.Error("total compared across different figure sets")
		}
		if strings.Contains(r.Metric, "brand-new") {
			t.Error("phase missing from baseline was flagged")
		}
	}
	if len(regs) != 1 || regs[0].Metric != "figure 2/wall" {
		t.Fatalf("want exactly the figure 2 regression, got %v", regs)
	}

	// A failed figure is a test problem, not a perf signal.
	cur.Figures[0].OK = false
	if regs := Diff(base, cur, DiffOptions{ThresholdPct: 25, MinMS: 50}); len(regs) != 0 {
		t.Fatalf("failed figure still diffed: %v", regs)
	}
}

func TestDiffParallelismMismatchNotComparable(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Parallelism = 8
	cur.WallMS *= 4 // massively "slower" — but it's 8 workers on the same host
	cur.Figures[0].WallMS *= 4
	cur.Phases[0].WallMS *= 4
	if Comparable(base, cur) {
		t.Error("reports at -j 4 and -j 8 reported comparable")
	}
	if regs := Diff(base, cur, DiffOptions{ThresholdPct: 25, MinMS: 50}); len(regs) != 0 {
		t.Fatalf("cross-parallelism diff produced regressions: %v", regs)
	}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.WallMS *= 1.10 // +10% < 25%
	cur.Figures[0].WallMS *= 1.10
	if regs := Diff(base, cur, DiffOptions{ThresholdPct: 25, MinMS: 50}); len(regs) != 0 {
		t.Fatalf("within-threshold drift flagged: %v", regs)
	}
}
