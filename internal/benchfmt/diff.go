package benchfmt

import (
	"fmt"
	"sort"
)

// DiffOptions tunes regression detection.
type DiffOptions struct {
	// ThresholdPct flags a metric that grew by more than this percentage
	// over the baseline (25 means "new > 1.25 × old").
	ThresholdPct float64
	// MinMS ignores metrics whose baseline is below this floor: a 3 ms
	// phase doubling to 6 ms is scheduler noise, not a regression.
	MinMS float64
}

// Regression is one metric that got slower than the baseline allows.
type Regression struct {
	Metric string  `json:"metric"`
	OldMS  float64 `json:"old_ms"`
	NewMS  float64 `json:"new_ms"`
	Pct    float64 `json:"pct"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%-28s %10.1f ms -> %10.1f ms  (+%.1f%%)", r.Metric, r.OldMS, r.NewMS, r.Pct)
}

// Comparable reports whether two reports' wall times can be meaningfully
// diffed: they must come from the same parallelism level. A span's wall
// time includes time the worker spent descheduled, so a -j 8 run on a
// small host inflates every concurrent phase relative to a -j 1 baseline
// — that is scheduling, not a regression.
func Comparable(baseline, current *Report) bool {
	return baseline.Parallelism == current.Parallelism
}

// Diff compares a new report against a baseline and returns every
// regression, worst first. Figures are matched by ID and phases by name;
// entries present in only one report are skipped (intersection
// semantics), so a smoke run with a subset of figures can still be
// checked against a full baseline. Figures that failed (OK=false) on
// either side are skipped too — a broken figure is a test failure, not a
// performance signal. Reports from different parallelism levels are not
// comparable (see Comparable) and diff as empty.
func Diff(baseline, current *Report, opt DiffOptions) []Regression {
	if !Comparable(baseline, current) {
		return nil
	}
	var out []Regression
	check := func(metric string, old, new float64) {
		if old < opt.MinMS {
			return
		}
		pct := (new - old) / old * 100
		if pct > opt.ThresholdPct {
			out = append(out, Regression{Metric: metric, OldMS: old, NewMS: new, Pct: pct})
		}
	}

	// Totals only compare when the figure sets match — a smoke run's
	// total wall says nothing about a full baseline's.
	if sameFigureSet(baseline, current) {
		check("total/wall", baseline.WallMS, current.WallMS)
		check("total/analyze", baseline.AnalyzeMS, current.AnalyzeMS)
		check("total/ingest", baseline.IngestMS, current.IngestMS)
	}

	base := map[string]Figure{}
	for _, f := range baseline.Figures {
		base[f.ID] = f
	}
	for _, f := range current.Figures {
		b, ok := base[f.ID]
		if !ok || !b.OK || !f.OK {
			continue
		}
		check("figure "+f.ID+"/wall", b.WallMS, f.WallMS)
		check("figure "+f.ID+"/analyze", b.AnalyzeMS, f.AnalyzeMS)
	}

	basePhase := map[string]Phase{}
	for _, p := range baseline.Phases {
		basePhase[p.Name] = p
	}
	for _, p := range current.Phases {
		b, ok := basePhase[p.Name]
		if !ok {
			continue
		}
		check("phase "+p.Name, b.WallMS, p.WallMS)
	}

	sort.Slice(out, func(a, b int) bool {
		if out[a].Pct != out[b].Pct {
			return out[a].Pct > out[b].Pct
		}
		return out[a].Metric < out[b].Metric
	})
	return out
}

func sameFigureSet(a, b *Report) bool {
	if len(a.Figures) != len(b.Figures) {
		return false
	}
	ids := map[string]bool{}
	for _, f := range a.Figures {
		ids[f.ID] = true
	}
	for _, f := range b.Figures {
		if !ids[f.ID] {
			return false
		}
	}
	return true
}
