package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting pins the hierarchy bookkeeping: parents, depths and the
// canonical depth-first order of a balanced begin/end sequence.
func TestSpanNesting(t *testing.T) {
	p := New()
	root := p.Begin("analyze")
	b := root.Child("build")
	b.End()
	m := root.Child("metrics")
	rows := m.Child("rows")
	rows.End()
	m.End()
	root.End()

	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range spans {
		names = append(names, strings.Repeat(">", s.Depth)+s.Name)
	}
	got := strings.Join(names, " ")
	want := "analyze >build >metrics >>rows"
	if got != want {
		t.Fatalf("canonical order %q, want %q", got, want)
	}
	for _, s := range spans {
		if s.Parent >= 0 && spans[s.Parent].Depth != s.Depth-1 {
			t.Errorf("span %s: parent depth %d, own depth %d", s.Name, spans[s.Parent].Depth, s.Depth)
		}
		if s.Dur < 0 {
			t.Errorf("span %s: negative duration %v", s.Name, s.Dur)
		}
	}
}

// TestCanonicalOrderSortsByName pins that sibling and root ordering is by
// name, not creation order — the property that makes snapshot structure
// deterministic when concurrent goroutines race to open spans.
func TestCanonicalOrderSortsByName(t *testing.T) {
	p := New()
	zb := p.Begin("z")
	ab := p.Begin("a")
	c2 := ab.Child("second")
	c1 := ab.Child("first")
	c1.End()
	c2.End()
	ab.End()
	zb.End()

	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range spans {
		names = append(names, s.Name)
	}
	got := strings.Join(names, " ")
	if want := "a first second z"; got != want {
		t.Fatalf("canonical order %q, want %q", got, want)
	}
}

// TestDoubleEndPanics pins the unbalanced-instrumentation guard: a span
// ended twice panics with the span's name rather than corrupting counts.
func TestDoubleEndPanics(t *testing.T) {
	p := New()
	s := p.Begin("oops")
	s.End()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second End did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "oops") {
			t.Fatalf("panic %v does not name the span", r)
		}
	}()
	s.End()
}

// TestSnapshotRejectsOpenSpans pins the other unbalance direction: a
// snapshot with spans still open errors cleanly, naming them.
func TestSnapshotRejectsOpenSpans(t *testing.T) {
	p := New()
	root := p.Begin("root")
	root.Child("leaked-child") // never ended
	if _, err := p.Snapshot(); err == nil {
		t.Fatal("snapshot with open spans succeeded")
	} else if !strings.Contains(err.Error(), "leaked-child") {
		t.Fatalf("error %v does not name the open span", err)
	}
	// Closing the remaining spans makes the snapshot valid again.
	for i := range p.spans {
		if !p.spans[i].ended {
			(&Span{p: p, id: i}).End()
		}
	}
	if _, err := p.Snapshot(); err != nil {
		t.Fatalf("balanced snapshot still errors: %v", err)
	}
	_ = root
}

// TestNilGuards pins the zero-overhead-off contract: nil profilers,
// spans and telemetry absorb every call.
func TestNilGuards(t *testing.T) {
	var p *Profiler
	s := p.Begin("x")
	if s != nil {
		t.Fatal("nil profiler returned a live span")
	}
	if c := s.Child("y"); c != nil {
		t.Fatal("nil span returned a live child")
	}
	s.End() // must not panic
	if got, err := p.Snapshot(); got != nil || err != nil {
		t.Fatalf("nil profiler snapshot = %v, %v", got, err)
	}
	if sp := Under(p, nil, "z"); sp != nil {
		t.Fatal("Under(nil, nil) returned a live span")
	}

	var tel *PoolTelemetry
	tel.RecordChunk(0, time.Millisecond)
	tel.RecordWorkerSpan(0, time.Millisecond)
	tel.RecordQueueWait(time.Millisecond)
	tel.MemoHit()
	tel.MemoMiss()
	if tel.Snapshot() != nil {
		t.Fatal("nil telemetry snapshot non-nil")
	}
	if tel.Workers() != 0 {
		t.Fatal("nil telemetry reports workers")
	}
}

// TestConcurrentSpans exercises concurrent span emission from many
// goroutines — the pool-worker shape — under the race detector, and checks
// the snapshot is canonical regardless of interleaving.
func TestConcurrentSpans(t *testing.T) {
	p := New()
	p.TrackMem = false // keep the hot loop allocation-light
	root := p.Begin("fanout")
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.Child("worker")
				inner := s.Child("chunk")
				inner.End()
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()

	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + workers*50*2; len(spans) != want {
		t.Fatalf("snapshot has %d spans, want %d", len(spans), want)
	}
	for i := 1; i < len(spans); i++ {
		prev, cur := spans[i-1], spans[i]
		if cur.Parent == prev.Parent && prev.Name > cur.Name {
			t.Fatalf("siblings out of order at %d: %q before %q", i, prev.Name, cur.Name)
		}
	}
}

// TestPoolTelemetry pins the aggregate arithmetic: busy/idle derivation,
// chunk counts, histogram population and memo counters.
func TestPoolTelemetry(t *testing.T) {
	tel := NewPoolTelemetry(4)
	tel.RecordChunk(0, 100*time.Microsecond)
	tel.RecordChunk(0, 300*time.Microsecond)
	tel.RecordChunk(2, 1*time.Millisecond)
	tel.RecordWorkerSpan(0, 500*time.Microsecond)
	tel.RecordWorkerSpan(2, 2*time.Millisecond)
	tel.RecordQueueWait(50 * time.Microsecond)
	tel.MemoHit()
	tel.MemoHit()
	tel.MemoMiss()

	s := tel.Snapshot()
	if len(s.Workers) != 2 {
		t.Fatalf("active workers = %d, want 2 (idle slots omitted)", len(s.Workers))
	}
	if s.Chunks != 3 {
		t.Errorf("chunks = %d, want 3", s.Chunks)
	}
	if want := 400 * time.Microsecond; s.Workers[0].Busy != want {
		t.Errorf("worker 0 busy = %v, want %v", s.Workers[0].Busy, want)
	}
	if want := 100 * time.Microsecond; s.Workers[0].Idle != want {
		t.Errorf("worker 0 idle = %v, want %v", s.Workers[0].Idle, want)
	}
	var histTotal int64
	for _, b := range s.Latency {
		if b.Lo >= b.Hi {
			t.Errorf("bucket bounds [%v,%v) inverted", b.Lo, b.Hi)
		}
		histTotal += b.Count
	}
	if histTotal != 3 {
		t.Errorf("histogram counts %d chunks, want 3", histTotal)
	}
	if len(s.Memos) != 1 || s.Memos[0].Hits != 2 || s.Memos[0].Misses != 1 {
		t.Errorf("memo counters = %+v, want 2 hits / 1 miss", s.Memos)
	}
	if s.QueueWait != 50*time.Microsecond || s.Fanouts != 1 {
		t.Errorf("queue wait %v over %d, want 50µs over 1", s.QueueWait, s.Fanouts)
	}

	// Out-of-range worker indexes clamp instead of panicking.
	tel.RecordChunk(99, time.Microsecond)
	tel.RecordChunk(-1, time.Microsecond)
}

// TestWriteTable smoke-checks the phase table: every span name appears,
// indentation follows depth, and the coverage line is present for nested
// profiles.
func TestWriteTable(t *testing.T) {
	p := New()
	root := p.Begin("analyze")
	c := root.Child("build")
	time.Sleep(time.Millisecond)
	c.End()
	root.End()
	spans, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tel := NewPoolTelemetry(2)
	tel.RecordChunk(0, time.Millisecond)
	tel.RecordWorkerSpan(0, 2*time.Millisecond)
	tel.MemoHit()

	var buf bytes.Buffer
	if err := WriteTable(&buf, &Profile{Spans: spans, Pool: tel.Snapshot()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"analyze", "  build", "phases attribute", "runpool:", "memo pool: 1 hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
