package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log2(ns) chunk-latency buckets: bucket i
// counts chunks whose duration d satisfies 2^(i-1) ≤ d < 2^i ns (bucket 0
// holds sub-nanosecond/zero readings). 48 buckets cover ~3 days.
const histBuckets = 48

// workerStats is one worker slot's counters, padded to its own cache line
// so concurrent workers never false-share.
type workerStats struct {
	busyNS  atomic.Int64 // time inside chunk/job bodies
	spanNS  atomic.Int64 // participation time (goroutine entry to exit)
	chunks  atomic.Int64 // bodies executed
	strides atomic.Int64 // fan-out invocations this slot participated in
	_       [64 - 4*8]byte
}

// PoolTelemetry aggregates run-pool activity: per-worker busy/participation
// time and chunk counts, a global chunk-latency histogram, queue waits
// (delay between a fan-out starting and each worker claiming its first
// chunk), and memoization-cache hit/miss counters. All record methods are
// lock-free atomics, safe from concurrent workers, and every method on a
// nil receiver is a no-op, so the pool pays one nil test when telemetry is
// detached.
//
// Worker indexes are per-invocation slots (0 ≤ w < Workers()), not OS
// threads: slot w aggregates every goroutine that ran as the w-th worker
// of some fan-out, plus the calling goroutine of serial fallbacks (slot 0).
type PoolTelemetry struct {
	workers []workerStats
	hist    [histBuckets]atomic.Int64
	queueNS atomic.Int64
	queueN  atomic.Int64

	memoHits   atomic.Int64
	memoMisses atomic.Int64
}

// NewPoolTelemetry returns telemetry with the given number of worker
// slots; workers < 1 is normalized to 1.
func NewPoolTelemetry(workers int) *PoolTelemetry {
	if workers < 1 {
		workers = 1
	}
	return &PoolTelemetry{workers: make([]workerStats, workers)}
}

// Workers returns the number of worker slots (0 for a nil receiver).
func (t *PoolTelemetry) Workers() int {
	if t == nil {
		return 0
	}
	return len(t.workers)
}

// slot clamps a worker index into the allocated range, so a pool resized
// after telemetry attachment degrades to aggregation rather than panicking.
func (t *PoolTelemetry) slot(w int) *workerStats {
	if w < 0 {
		w = 0
	}
	if w >= len(t.workers) {
		w = len(t.workers) - 1
	}
	return &t.workers[w]
}

// RecordChunk attributes one executed chunk (or Map job) of duration d to
// worker slot w: busy time, chunk count and the latency histogram.
func (t *PoolTelemetry) RecordChunk(w int, d time.Duration) {
	if t == nil {
		return
	}
	ws := t.slot(w)
	ws.busyNS.Add(int64(d))
	ws.chunks.Add(1)
	t.hist[histBucket(d)].Add(1)
}

// RecordWorkerSpan attributes one fan-out participation of total duration d
// to worker slot w. Idle time is derived at snapshot: span − busy.
func (t *PoolTelemetry) RecordWorkerSpan(w int, d time.Duration) {
	if t == nil {
		return
	}
	ws := t.slot(w)
	ws.spanNS.Add(int64(d))
	ws.strides.Add(1)
}

// RecordQueueWait records the delay between a fan-out being issued and one
// of its workers claiming its first chunk.
func (t *PoolTelemetry) RecordQueueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.queueNS.Add(int64(d))
	t.queueN.Add(1)
}

// MemoHit / MemoMiss count memoization-cache lookups routed through this
// telemetry (the experiment engine points its caches here).
func (t *PoolTelemetry) MemoHit() {
	if t != nil {
		t.memoHits.Add(1)
	}
}

// MemoMiss records a memoization-cache miss (a computation that ran).
func (t *PoolTelemetry) MemoMiss() {
	if t != nil {
		t.memoMisses.Add(1)
	}
}

// histBucket maps a duration to its log2 bucket.
func histBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	b := bits.Len64(uint64(d))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// WorkerSnapshot is one worker slot's aggregate in a PoolSnapshot.
type WorkerSnapshot struct {
	Worker int           `json:"worker"`
	Busy   time.Duration `json:"busy_ns"`
	Span   time.Duration `json:"span_ns"`
	Idle   time.Duration `json:"idle_ns"` // max(0, Span − Busy)
	Chunks int64         `json:"chunks"`
}

// HistBucket is one non-empty latency bucket: Count chunks took at least
// Lo and less than Hi.
type HistBucket struct {
	Lo    time.Duration `json:"lo_ns"`
	Hi    time.Duration `json:"hi_ns"`
	Count int64         `json:"count"`
}

// MemoCounters is one memoization cache's hit/miss totals. Evictions is
// non-zero only for capacity-bounded caches (a long-running server's
// analysis cache); the CLIs' unbounded memos never evict.
type MemoCounters struct {
	Name      string `json:"name"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// PoolSnapshot is a point-in-time aggregate of pool telemetry.
type PoolSnapshot struct {
	Workers []WorkerSnapshot `json:"workers"`

	Chunks    int64         `json:"chunks"`
	Busy      time.Duration `json:"busy_ns"`
	Idle      time.Duration `json:"idle_ns"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	Fanouts   int64         `json:"queue_waits"` // fan-out first-claim waits recorded

	// Latency is the chunk-latency histogram, non-empty buckets only,
	// ascending.
	Latency []HistBucket `json:"latency,omitempty"`

	// Memos lists memoization caches reporting through this registry,
	// in the order the owner registered them.
	Memos []MemoCounters `json:"memos,omitempty"`
}

// Snapshot aggregates the counters. Worker slots that never recorded
// anything are omitted, so a serial run reports exactly one worker. A nil
// receiver returns nil.
func (t *PoolTelemetry) Snapshot() *PoolSnapshot {
	if t == nil {
		return nil
	}
	s := &PoolSnapshot{
		QueueWait: time.Duration(t.queueNS.Load()),
		Fanouts:   t.queueN.Load(),
	}
	for i := range t.workers {
		ws := &t.workers[i]
		busy := time.Duration(ws.busyNS.Load())
		span := time.Duration(ws.spanNS.Load())
		chunks := ws.chunks.Load()
		if busy == 0 && span == 0 && chunks == 0 {
			continue
		}
		idle := span - busy
		if idle < 0 {
			idle = 0
		}
		s.Workers = append(s.Workers, WorkerSnapshot{
			Worker: i, Busy: busy, Span: span, Idle: idle, Chunks: chunks,
		})
		s.Chunks += chunks
		s.Busy += busy
		s.Idle += idle
	}
	for b := 0; b < histBuckets; b++ {
		n := t.hist[b].Load()
		if n == 0 {
			continue
		}
		lo := time.Duration(0)
		if b > 0 {
			lo = time.Duration(1) << (b - 1)
		}
		s.Latency = append(s.Latency, HistBucket{
			Lo: lo, Hi: time.Duration(1) << b, Count: n,
		})
	}
	if h, m := t.memoHits.Load(), t.memoMisses.Load(); h > 0 || m > 0 {
		s.Memos = append(s.Memos, MemoCounters{
			Name: "pool", Hits: uint64(h), Misses: uint64(m),
		})
	}
	return s
}
