// Package obs is the analyzer's self-observability layer: the same
// medicine the grain graph applies to the simulated runtime, applied to the
// analysis pipeline itself. A Profiler collects hierarchical phase spans
// (ggp ingest, graph build, each metric kernel, the critical-path DP, the
// highlight scan, what-if ranking, export emission) with wall time and
// heap-allocation deltas, and a PoolTelemetry aggregates the run pool's
// per-worker busy/idle time, chunk counts, chunk-latency histogram, queue
// waits and memoization hit/miss counters.
//
// Everything is nil-guarded like the internal/trace sinks: a nil *Profiler
// hands out nil *Spans, a nil *Span ignores Child/End, and a nil
// *PoolTelemetry ignores every record call, so instrumented code pays one
// pointer test — no clock reads, no allocation — when observation is off.
//
// Snapshots are canonical: spans are ordered depth-first with root trees
// and siblings sorted by name (creation sequence breaks ties), so the
// structure of a snapshot — everything except the measured times and
// allocation deltas — is deterministic at every pool parallelism.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Profiler collects phase spans. Construct with New; the zero value is not
// usable. All methods are safe for concurrent use: pool workers may open
// and close spans while other phases run.
type Profiler struct {
	// TrackMem, when set (New's default), samples runtime.MemStats at span
	// begin/end and records the malloc-count and allocated-byte deltas.
	// The counters are process-global, so deltas attributed to a span that
	// overlaps concurrent work include that work's allocations too —
	// approximate by design, like any sampling profiler.
	TrackMem bool

	epoch time.Time

	mu    sync.Mutex
	spans []spanState
	roots int
	open  int
}

// spanState is a span's mutable record inside the profiler.
type spanState struct {
	name        string
	parent      int // -1 for roots
	seq         int // creation sequence within the parent (or among roots)
	start       time.Duration
	dur         time.Duration
	allocs0     uint64
	bytes0      uint64
	allocs      uint64
	bytes       uint64
	ended       bool
	childrenSeq int
}

// Span is a live phase. Obtain one from Profiler.Begin or Span.Child and
// finish it with End. A nil Span is inert: Child returns nil, End is a
// no-op — callers never need to test whether profiling is enabled.
type Span struct {
	p  *Profiler
	id int
}

// New returns an empty profiler with memory tracking enabled.
func New() *Profiler {
	return &Profiler{TrackMem: true, epoch: time.Now()}
}

// Begin opens a root span. A nil profiler returns a nil span.
func (p *Profiler) Begin(name string) *Span {
	if p == nil {
		return nil
	}
	return p.begin(name, -1)
}

// Child opens a span nested under s. A nil span returns nil, so disabled
// profiling propagates through call chains without checks.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.p.begin(name, s.id)
}

// Under opens a span below parent when parent is non-nil, and otherwise a
// root span on p. It is the shape instrumented pipeline stages want: the
// caller may or may not have threaded a parent through.
func Under(p *Profiler, parent *Span, name string) *Span {
	if parent != nil {
		return parent.Child(name)
	}
	return p.Begin(name)
}

func (p *Profiler) begin(name string, parent int) *Span {
	var allocs, bytes uint64
	if p.TrackMem {
		allocs, bytes = readMem()
	}
	now := time.Since(p.epoch)
	p.mu.Lock()
	id := len(p.spans)
	seq := 0
	if parent >= 0 {
		seq = p.spans[parent].childrenSeq
		p.spans[parent].childrenSeq++
	} else {
		seq = p.roots
		p.roots++
	}
	p.spans = append(p.spans, spanState{
		name:    name,
		parent:  parent,
		seq:     seq,
		start:   now,
		allocs0: allocs,
		bytes0:  bytes,
	})
	p.open++
	p.mu.Unlock()
	return &Span{p: p, id: id}
}

// End closes the span, recording its wall time and (with TrackMem) its
// allocation deltas. Ending a span twice is a bug in the instrumentation —
// the second End panics, naming the span, rather than silently corrupting
// the phase accounting. End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	p := s.p
	var allocs, bytes uint64
	if p.TrackMem {
		allocs, bytes = readMem()
	}
	now := time.Since(p.epoch)
	p.mu.Lock()
	st := &p.spans[s.id]
	if st.ended {
		name := st.name
		p.mu.Unlock()
		panic(fmt.Sprintf("obs: span %q ended twice", name))
	}
	st.ended = true
	st.dur = now - st.start
	if p.TrackMem {
		st.allocs = allocs - st.allocs0
		st.bytes = bytes - st.bytes0
	}
	p.open--
	p.mu.Unlock()
}

// readMem samples the process-global allocation counters.
func readMem() (allocs, bytes uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs, ms.TotalAlloc
}

// SpanRecord is one finished span in a snapshot.
type SpanRecord struct {
	// ID and Parent index into the snapshot's Spans slice (Parent == -1
	// for roots). Depth is the nesting level, 0 for roots.
	ID     int
	Parent int
	Depth  int
	Name   string
	// Start is the span's begin time relative to the profiler's epoch;
	// Dur its wall time.
	Start time.Duration
	Dur   time.Duration
	// Allocs and Bytes are the heap-allocation deltas over the span
	// (zero when TrackMem is off). Process-global: see Profiler.TrackMem.
	Allocs uint64
	Bytes  uint64
}

// Snapshot returns every finished span in canonical order: depth-first,
// with root trees and sibling groups sorted by name (creation sequence
// breaking ties between same-named siblings). IDs and Parent links are
// rewritten to snapshot positions. It fails if any span is still open —
// unbalanced begin/end instrumentation — naming the offenders.
func (p *Profiler) Snapshot() ([]SpanRecord, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.open > 0 {
		var names []string
		for i := range p.spans {
			if !p.spans[i].ended {
				names = append(names, p.spans[i].name)
			}
		}
		return nil, fmt.Errorf("obs: %d span(s) still open: %v", p.open, names)
	}

	// Group children by parent (-1 keyed as len(spans) for roots).
	children := make(map[int][]int, len(p.spans))
	for i := range p.spans {
		children[p.spans[i].parent] = append(children[p.spans[i].parent], i)
	}
	for _, ids := range children {
		sort.Slice(ids, func(a, b int) bool {
			sa, sb := &p.spans[ids[a]], &p.spans[ids[b]]
			if sa.name != sb.name {
				return sa.name < sb.name
			}
			return sa.seq < sb.seq
		})
	}

	out := make([]SpanRecord, 0, len(p.spans))
	var walk func(id, parent, depth int)
	walk = func(id, parent, depth int) {
		st := &p.spans[id]
		pos := len(out)
		out = append(out, SpanRecord{
			ID: pos, Parent: parent, Depth: depth, Name: st.name,
			Start: st.start, Dur: st.dur, Allocs: st.allocs, Bytes: st.bytes,
		})
		for _, c := range children[id] {
			walk(c, pos, depth+1)
		}
	}
	for _, r := range children[-1] {
		walk(r, -1, 0)
	}
	return out, nil
}

// Profile bundles one observation of the analyzer: the finished phase
// spans in canonical order plus, when pool telemetry was attached, the run
// pool's aggregate counters. It is what the phase table renders and the
// self-profile exporter serializes.
type Profile struct {
	Spans []SpanRecord
	Pool  *PoolSnapshot
}
