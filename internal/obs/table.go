package obs

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// WriteTable renders a profile as an aligned phase table: one row per span,
// indented by nesting depth, with wall time, the share of its root tree's
// wall, and allocation deltas; then the run-pool section when telemetry was
// attached. The final line reports attribution coverage — how much of the
// root spans' wall time their immediate children account for — which is
// the number the "no more guessing at the 100-second tail" goal cares
// about. Structure (row order, names) is deterministic for a canonical
// snapshot; only the measured values vary run to run.
func WriteTable(w io.Writer, p *Profile) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\t\twall\t%\tallocs\tbytes\t")

	// Root wall per tree, for the % column and the coverage line. A root
	// with children is attributed by what its immediate children cover; a
	// childless root is itself a leaf phase and counts as fully
	// attributed (e.g. a standalone simulate: tree).
	rootWall := make([]time.Duration, len(p.Spans))
	hasChild := make([]bool, len(p.Spans))
	for _, s := range p.Spans {
		if s.Parent >= 0 {
			hasChild[s.Parent] = true
		}
	}
	var rootsTotal, childTotal time.Duration
	for _, s := range p.Spans {
		if s.Parent < 0 {
			rootWall[s.ID] = s.Dur
			rootsTotal += s.Dur
			if !hasChild[s.ID] {
				childTotal += s.Dur
			}
		} else {
			rootWall[s.ID] = rootWall[s.Parent]
			if s.Depth == 1 {
				childTotal += s.Dur
			}
		}
	}
	hasNest := false
	for _, s := range p.Spans {
		if s.Depth == 1 {
			hasNest = true
		}
		share := 0.0
		if rootWall[s.ID] > 0 {
			share = 100 * float64(s.Dur) / float64(rootWall[s.ID])
		}
		fmt.Fprintf(tw, "%s%s\t\t%s\t%.1f%%\t%d\t%s\t\n",
			strings.Repeat("  ", s.Depth), s.Name,
			fmtDur(s.Dur), share, s.Allocs, fmtBytes(s.Bytes))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if hasNest && rootsTotal > 0 {
		fmt.Fprintf(w, "phases attribute %.1f%% of %s root wall time\n",
			100*float64(childTotal)/float64(rootsTotal), fmtDur(rootsTotal))
	}
	if p.Pool != nil {
		writePool(w, p.Pool)
	}
	return nil
}

// writePool renders the run-pool telemetry section.
func writePool(w io.Writer, s *PoolSnapshot) {
	fmt.Fprintf(w, "\nrunpool: %d active worker(s), %d chunks, busy %s, idle %s",
		len(s.Workers), s.Chunks, fmtDur(s.Busy), fmtDur(s.Idle))
	if s.Fanouts > 0 {
		fmt.Fprintf(w, ", queue wait %s over %d fan-outs", fmtDur(s.QueueWait), s.Fanouts)
	}
	fmt.Fprintln(w)
	for _, ws := range s.Workers {
		fmt.Fprintf(w, "  worker %d: busy %s / span %s, %d chunks\n",
			ws.Worker, fmtDur(ws.Busy), fmtDur(ws.Span), ws.Chunks)
	}
	if len(s.Latency) > 0 {
		fmt.Fprintf(w, "  chunk latency: %s\n", histLine(s.Latency))
	}
	for _, m := range s.Memos {
		total := m.Hits + m.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(m.Hits) / float64(total)
		}
		fmt.Fprintf(w, "  memo %s: %d hits / %d misses (%.1f%% hit rate)", m.Name, m.Hits, m.Misses, rate)
		if m.Evictions > 0 {
			fmt.Fprintf(w, ", %d evicted", m.Evictions)
		}
		fmt.Fprintln(w)
	}
}

// histLine compacts the latency histogram into one line of
// "[lo,hi):count" cells.
func histLine(bs []HistBucket) string {
	var b strings.Builder
	for i, h := range bs {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "[%s,%s):%d", fmtDur(h.Lo), fmtDur(h.Hi), h.Count)
	}
	return b.String()
}

// fmtDur renders durations with stable precision: milliseconds with one
// decimal above 1ms, microseconds below, nanoseconds under 1µs.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%dµs", d/time.Microsecond)
	default:
		return fmt.Sprintf("%dns", d)
	}
}

// fmtBytes renders byte counts in binary units.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
