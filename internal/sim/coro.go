// Package sim provides the primitives the simulated runtime is built on:
// virtual time and cooperatively scheduled coroutines.
//
// Task bodies are ordinary Go closures, but the simulator must suspend them
// at synchronization points (taskwait) and resume them later in virtual-time
// order. Each task body therefore runs on its own goroutine, coordinated
// with the engine through channel handoff so that exactly one goroutine —
// the engine's or one coroutine's — runs at any moment. All parallelism in
// the simulation is virtual.
package sim

// Time is virtual time in cycles.
type Time = uint64

// Status describes how a coroutine returned control to its resumer.
type Status int

const (
	// Suspended means the coroutine called Park and can be resumed.
	Suspended Status = iota
	// Done means the coroutine's function returned; it must not be resumed.
	Done
)

// killed is the sentinel panic value used to unwind an abandoned coroutine.
type killed struct{}

// Coro is a one-shot coroutine. The engine drives it with Resume; the
// coroutine's function yields with Park. A Coro must be finished (run to
// Done) or Killed, otherwise its goroutine leaks.
type Coro struct {
	resume   chan struct{}
	yield    chan Status
	done     bool
	dead     bool
	panicked bool
	panicVal any
}

// NewCoro creates a coroutine around fn. The goroutine starts immediately
// but blocks until the first Resume.
func NewCoro(fn func(c *Coro)) *Coro {
	c := &Coro{resume: make(chan struct{}), yield: make(chan Status)}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					return // unwound by Kill; exit silently
				}
				// Propagate the panic to the resumer instead of crashing
				// this goroutine (and the process).
				c.panicked = true
				c.panicVal = r
				c.yield <- Done
			}
		}()
		_, ok := <-c.resume
		if !ok {
			panic(killed{})
		}
		fn(c)
		c.yield <- Done
	}()
	return c
}

// Resume transfers control to the coroutine until it parks or finishes and
// reports which happened. Resuming a Done or Killed coroutine panics.
func (c *Coro) Resume() Status {
	if c.done || c.dead {
		panic("sim: Resume on finished or killed coroutine")
	}
	c.resume <- struct{}{}
	st := <-c.yield
	if st == Done {
		c.done = true
		if c.panicked {
			panic(c.panicVal)
		}
	}
	return st
}

// Park suspends the coroutine, returning control to the resumer. It must be
// called from inside the coroutine's function. If the coroutine has been
// killed while parked, Park unwinds the goroutine via panic(killed{}).
func (c *Coro) Park() {
	c.yield <- Suspended
	_, ok := <-c.resume
	if !ok {
		panic(killed{})
	}
}

// Done reports whether the coroutine's function has returned.
func (c *Coro) Done() bool { return c.done }

// Kill abandons a parked (or never-started) coroutine, unwinding its
// goroutine so it does not leak. Killing a Done coroutine is a no-op;
// killing a running coroutine is impossible by construction (only one
// goroutine runs at a time).
func (c *Coro) Kill() {
	if c.done || c.dead {
		return
	}
	c.dead = true
	close(c.resume)
	// Drain the final yield if the goroutine reaches one while unwinding.
	// Unwinding via panic(killed{}) never sends, so nothing to drain; the
	// close wakes the receive in Park or the initial receive.
}

// MaxTime returns the larger of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the smaller of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
