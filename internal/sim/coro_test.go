package sim

import (
	"runtime"
	"testing"
	"time"
)

func TestCoroRunsToCompletion(t *testing.T) {
	var steps []int
	c := NewCoro(func(c *Coro) {
		steps = append(steps, 1)
		c.Park()
		steps = append(steps, 2)
		c.Park()
		steps = append(steps, 3)
	})
	if st := c.Resume(); st != Suspended {
		t.Fatalf("first resume status = %v, want Suspended", st)
	}
	if st := c.Resume(); st != Suspended {
		t.Fatalf("second resume status = %v, want Suspended", st)
	}
	if st := c.Resume(); st != Done {
		t.Fatalf("third resume status = %v, want Done", st)
	}
	if !c.Done() {
		t.Fatal("coroutine not marked Done")
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if steps[i] != w {
			t.Fatalf("steps = %v, want %v", steps, want)
		}
	}
}

func TestCoroNoParkJustDone(t *testing.T) {
	ran := false
	c := NewCoro(func(c *Coro) { ran = true })
	if st := c.Resume(); st != Done {
		t.Fatalf("resume status = %v, want Done", st)
	}
	if !ran {
		t.Fatal("body did not run")
	}
}

func TestResumeAfterDonePanics(t *testing.T) {
	c := NewCoro(func(c *Coro) {})
	c.Resume()
	defer func() {
		if recover() == nil {
			t.Fatal("Resume after Done did not panic")
		}
	}()
	c.Resume()
}

func TestKillUnstartedCoroDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		c := NewCoro(func(c *Coro) { t.Error("body must not run") })
		c.Kill()
	}
	waitForGoroutines(t, before)
}

func TestKillParkedCoroDoesNotLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		c := NewCoro(func(c *Coro) {
			c.Park()
			t.Error("body must not run past park after kill")
		})
		if st := c.Resume(); st != Suspended {
			t.Fatalf("resume status = %v", st)
		}
		c.Kill()
	}
	waitForGoroutines(t, before)
}

func TestKillDoneCoroIsNoop(t *testing.T) {
	c := NewCoro(func(c *Coro) {})
	c.Resume()
	c.Kill() // must not panic or hang
}

func TestResumeAfterKillPanics(t *testing.T) {
	c := NewCoro(func(c *Coro) { c.Park() })
	c.Resume()
	c.Kill()
	defer func() {
		if recover() == nil {
			t.Fatal("Resume after Kill did not panic")
		}
	}()
	c.Resume()
}

func TestNestedCoros(t *testing.T) {
	// An outer coroutine resuming an inner one, as the engine does when a
	// worker switches between tasks.
	var order []string
	inner := NewCoro(func(c *Coro) {
		order = append(order, "inner-a")
		c.Park()
		order = append(order, "inner-b")
	})
	outer := NewCoro(func(c *Coro) {
		order = append(order, "outer-a")
		inner.Resume()
		order = append(order, "outer-b")
		c.Park()
		inner.Resume()
		order = append(order, "outer-c")
	})
	outer.Resume()
	outer.Resume()
	want := []string{"outer-a", "inner-a", "outer-b", "inner-b", "outer-c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(3, 5) != 5 || MaxTime(5, 3) != 5 || MaxTime(4, 4) != 4 {
		t.Error("MaxTime wrong")
	}
	if MinTime(3, 5) != 3 || MinTime(5, 3) != 3 || MinTime(4, 4) != 4 {
		t.Error("MinTime wrong")
	}
}

func waitForGoroutines(t *testing.T, target int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.Gosched()
		if runtime.NumGoroutine() <= target {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines did not drain: have %d, want <= %d", runtime.NumGoroutine(), target)
}
