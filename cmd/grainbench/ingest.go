package main

import (
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"graingraph/internal/benchfmt"
	"graingraph/internal/core"
	"graingraph/internal/expt"
	"graingraph/internal/ggp"
	"graingraph/internal/runpool"
)

// ingestIters is how many cold decodes each mode is timed over; the
// minimum is reported, the conventional cold-path estimator (any
// interference only ever adds time).
const ingestIters = 5

// convertArtifact is the -ggpconv path: read src (either format), analyze
// it once, and write a columnar v2 artifact with full derived sidecars.
func convertArtifact(src, dst string) error {
	if dst == "" {
		ext := filepath.Ext(src)
		dst = src[:len(src)-len(ext)] + ".v2" + ext
	}
	if err := expt.UpgradeArtifact(src, dst, expt.Pool()); err != nil {
		return err
	}
	fi, _ := os.Stat(dst)
	fmt.Fprintf(os.Stderr, "grainbench: converted %s -> %s (%d bytes, columnar v2 + sidecars)\n", src, dst, fi.Size())
	return nil
}

// ingestBench measures the cold time-to-analysis-ready-graph for one
// artifact through every format path: the v1 event stream (parse + graph
// build), the bare columnar v2 (decode + level build), and v2 with
// sidecars (decode only; levels ride along). The source artifact may be
// either version; the other representations are derived into a temp dir.
// Results are appended to the benchjson report and printed as a table.
func ingestBench(path string, jobs int) ([]benchfmt.IngestEntry, error) {
	dec, err := ggp.DecodeFile(path, expt.Pool(), nil)
	if err != nil {
		return nil, fmt.Errorf("ingestbench: %w", err)
	}
	tmp, err := os.MkdirTemp("", "grainbench-ingest-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	v1Path := filepath.Join(tmp, "a.v1.ggp")
	v2Path := filepath.Join(tmp, "a.v2.ggp")
	v2ScPath := filepath.Join(tmp, "a.v2sc.ggp")
	if err := ggp.WriteFile(v1Path, dec.Trace); err != nil {
		return nil, err
	}
	g := dec.TakeGraph()
	if g == nil {
		g = core.Build(dec.Trace)
	}
	if err := ggp.WriteFileV2(v2Path, dec.Trace, g, nil); err != nil {
		return nil, err
	}
	if err := expt.UpgradeArtifact(v1Path, v2ScPath, expt.Pool()); err != nil {
		return nil, err
	}

	pool := runpool.New(jobs)
	name := filepath.Base(path)
	grains := dec.Trace.NumGrains()
	modes := []struct {
		mode, file string
		raw        []byte
		best       time.Duration
	}{
		{mode: "v1", file: v1Path},
		{mode: "v2", file: v2Path},
		{mode: "v2+sidecars", file: v2ScPath},
	}
	for i := range modes {
		raw, err := os.ReadFile(modes[i].file)
		if err != nil {
			return nil, err
		}
		modes[i].raw = raw
		modes[i].best = time.Duration(1<<63 - 1)
	}
	// Interleave modes within each iteration rather than timing each mode's
	// iterations back to back: on a shared host whose effective speed drifts
	// over minutes, back-to-back blocks land each mode in different host
	// conditions and corrupt the v1:v2 ratio. Round-robin keeps every mode's
	// samples spread across the same conditions; min-of-N then discards
	// interference identically for all of them.
	for i := 0; i < ingestIters; i++ {
		for m := range modes {
			start := time.Now()
			d, err := ggp.Decode(modes[m].raw, pool, nil)
			if err != nil {
				return nil, fmt.Errorf("ingestbench %s: %w", modes[m].mode, err)
			}
			g := d.TakeGraph()
			if g == nil {
				g = core.Build(d.Trace)
			}
			g.NumLevels()
			if el := time.Since(start); el < modes[m].best {
				modes[m].best = el
			}
		}
	}
	var out []benchfmt.IngestEntry
	for _, m := range modes {
		out = append(out, benchfmt.IngestEntry{
			Artifact: name,
			Mode:     m.mode,
			Jobs:     jobs,
			WallMS:   float64(m.best) / float64(time.Millisecond),
			Grains:   grains,
			Bytes:    int64(len(m.raw)),
			Note:     "min of " + fmt.Sprint(ingestIters) + " cold decodes to analysis-ready graph, modes interleaved",
		})
	}
	return out, nil
}

// writeIngestTable prints the -ingestbench results as a console table.
func writeIngestTable(entries []benchfmt.IngestEntry) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "artifact\tmode\tjobs\tgrains\tbytes\tingest ms")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.2f\n", e.Artifact, e.Mode, e.Jobs, e.Grains, e.Bytes, e.WallMS)
	}
	tw.Flush()
}
