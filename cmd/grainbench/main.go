// Command grainbench regenerates the paper's tables and figures on the
// simulated 48-core machine and prints them as console tables.
//
// Usage:
//
//	grainbench               # run everything
//	grainbench -fig 1        # only Figure 1
//	grainbench -fig sort     # only the Sort problem table (§4.3.1)
//	grainbench -cores 16     # override the core count for Figure 1
//
// Figure IDs: 1, 2, 4, 5, 6, 7, 8, 9 (covers 9/10 + Table 1), 11,
// "sort" (the §4.3.1 table), "others" (§4.3.6).
package main

import (
	"flag"
	"fmt"
	"os"

	"graingraph/internal/expt"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (1,2,4,5,6,7,8,9,11,sort,others,all)")
	cores := flag.Int("cores", 48, "core count for speedup experiments")
	flag.Parse()

	type step struct {
		id  string
		run func() error
	}
	w := os.Stdout
	steps := []step{
		{"1", func() error { _, err := expt.Figure1(w, *cores); return err }},
		{"2", func() error { _, err := expt.Figure2(w); return err }},
		{"4", func() error { _, err := expt.Figure4(w); return err }},
		{"5", func() error { _, err := expt.Figure5(w); return err }},
		{"sort", func() error { _, err := expt.SortPageTable(w); return err }},
		{"6", func() error { _, err := expt.Figure6(w); return err }},
		{"7", func() error { _, err := expt.Figure7(w); return err }},
		{"8", func() error { _, err := expt.Figure8(w); return err }},
		{"9", func() error { _, err := expt.Figure9Table1(w); return err }},
		{"11", func() error { _, err := expt.Figure11(w); return err }},
		{"others", func() error { _, err := expt.OtherBenchmarks(w); return err }},
	}
	ran := false
	for _, s := range steps {
		if *fig != "all" && *fig != s.id {
			continue
		}
		ran = true
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: figure %s: %v\n", s.id, err)
			os.Exit(1)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "grainbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
