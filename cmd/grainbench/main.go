// Command grainbench regenerates the paper's tables and figures on the
// simulated 48-core machine and prints them as console tables.
//
// Usage:
//
//	grainbench               # run everything
//	grainbench -fig 1        # only Figure 1
//	grainbench -fig sort     # only the Sort problem table (§4.3.1)
//	grainbench -cores 16     # override the core count for Figure 1
//	grainbench -fig sort -trace sort.json -stats
//	                         # + Perfetto trace and runtime-metrics footers
//
// Figure IDs: 1, 2, 4, 5, 6, 7, 8, 9 (covers 9/10 + Table 1), 11,
// "sort" (the §4.3.1 table), "others" (§4.3.6).
//
// -trace writes every simulated run of the selected figures as one
// Chrome-trace JSON file, openable at ui.perfetto.dev: one process per
// run, one thread track per worker, grain slices labelled
// file:line(func), steal/park instants, critical-path grains flagged.
// -stats appends a runtime-metrics footer (steals, parks, cache hit
// rates) to each figure so reproduction runs double as health reports.
//
// A figure step that fails is reported with its figure ID and the
// remaining steps still run; the exit code is non-zero if any failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graingraph/internal/export"
	"graingraph/internal/expt"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (1,2,4,5,6,7,8,9,11,sort,others,all)")
	cores := flag.Int("cores", 48, "core count for speedup experiments")
	traceOut := flag.String("trace", "", "write a Perfetto/Chrome trace of all simulated runs to this file")
	stats := flag.Bool("stats", false, "print a runtime-metrics footer after each figure")
	flag.Parse()

	if *traceOut != "" || *stats {
		expt.Instr = &expt.Instrumentation{
			CaptureEvents: *traceOut != "",
			PrintFooter:   *stats,
		}
	}

	type step struct {
		id  string
		run func() error
	}
	w := os.Stdout
	steps := []step{
		{"1", func() error { _, err := expt.Figure1(w, *cores); return err }},
		{"2", func() error { _, err := expt.Figure2(w); return err }},
		{"4", func() error { _, err := expt.Figure4(w); return err }},
		{"5", func() error { _, err := expt.Figure5(w); return err }},
		{"sort", func() error { _, err := expt.SortPageTable(w); return err }},
		{"6", func() error { _, err := expt.Figure6(w); return err }},
		{"7", func() error { _, err := expt.Figure7(w); return err }},
		{"8", func() error { _, err := expt.Figure8(w); return err }},
		{"9", func() error { _, err := expt.Figure9Table1(w); return err }},
		{"11", func() error { _, err := expt.Figure11(w); return err }},
		{"others", func() error { _, err := expt.OtherBenchmarks(w); return err }},
	}
	ran := false
	var failed []string
	for _, s := range steps {
		if *fig != "all" && *fig != s.id {
			continue
		}
		ran = true
		if err := s.run(); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: figure %s: %v\n", s.id, err)
			failed = append(failed, s.id)
			continue
		}
		fmt.Fprintln(w)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "grainbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			failed = append(failed, "trace")
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "grainbench: %d step(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// writeTrace exports every instrumented run as one Perfetto trace file.
func writeTrace(path string) error {
	runs := make([]export.PerfettoRun, 0, len(expt.Instr.Runs))
	for _, r := range expt.Instr.Runs {
		runs = append(runs, export.PerfettoRun{
			Label: r.Label, Trace: r.Trace, Events: r.Events,
			Dropped: r.Dropped, Critical: r.Critical,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.Perfetto(f, runs); err != nil {
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "grainbench: wrote %s (%d runs) — open at https://ui.perfetto.dev\n",
		path, len(runs))
	return nil
}
