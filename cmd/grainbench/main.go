// Command grainbench regenerates the paper's tables and figures on the
// simulated 48-core machine and prints them as console tables.
//
// Usage:
//
//	grainbench               # run everything
//	grainbench -fig 1        # only Figure 1
//	grainbench -fig sort     # only the Sort problem table (§4.3.1)
//	grainbench -fig whatif   # what-if opportunity tables (what would a
//	                         # perfect cutoff / optimized grain buy?).
//	                         # Hypotheses evaluate incrementally (sparse
//	                         # delta DP, DESIGN.md §11); -phases/-benchjson
//	                         # break the cost out as whatif:eval spans
//	grainbench -whatif       # full run plus the what-if tables
//	grainbench -cores 16     # override the core count for Figure 1
//	grainbench -j 8          # at most 8 simulations in flight (-j 1: serial)
//	grainbench -benchjson BENCH_all.json
//	                         # record per-figure wall time + engine stats
//	grainbench -fig sort -trace sort.json -stats
//	                         # + Perfetto trace and runtime-metrics footers
//	grainbench -record runs/ # additionally save every simulation as a
//	                         # .ggp artifact named by its content key
//	grainbench -replay runs/ # analyze saved artifacts instead of
//	                         # simulating (byte-identical output)
//
// Figure IDs: 1, 2, 4, 5, 6, 7, 8, 9 (covers 9/10 + Table 1), 11,
// "sort" (the §4.3.1 table), "others" (§4.3.6).
//
// Simulation runs are deterministic, memoized and independent, so figures
// fan their runs across -j workers (default: all CPUs) and the printed
// tables are byte-identical at every -j, including -j 1.
//
// -trace writes every simulated run of the selected figures as one
// Chrome-trace JSON file, openable at ui.perfetto.dev: one process per
// run, one thread track per worker, grain slices labelled
// file:line(func), steal/park instants, critical-path grains flagged.
// -stats appends a runtime-metrics footer (steals, parks, cache hit
// rates) to each figure so reproduction runs double as health reports.
//
// A figure step that fails is reported with its figure ID and the
// remaining steps still run; the exit code is non-zero if any failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"graingraph/internal/benchfmt"
	"graingraph/internal/export"
	"graingraph/internal/expt"
	"graingraph/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure/table to regenerate (1,2,4,5,6,7,8,9,11,sort,others,whatif,all; none with -ingestbench skips the figures)")
	cores := flag.Int("cores", 48, "core count for speedup experiments")
	whatIf := flag.Bool("whatif", false, "append the what-if opportunity tables to a full run (same as -fig whatif, but alongside the figures)")
	jobs := flag.Int("j", 0, "max simulations in flight; 1 = serial, <=0 = all CPUs")
	benchOut := flag.String("benchjson", "", "write a per-figure wall-time/engine-stats benchmark report (with phase and run-pool breakdowns) to this JSON file")
	record := flag.String("record", "", "write every keyed simulation of the selected figures as a grain-profile artifact (<hex key>.ggp) into this directory")
	replay := flag.String("replay", "", "load simulations from grain-profile artifacts in this directory instead of executing them (missing artifacts simulate live)")
	ggpV2 := flag.Bool("ggp-v2", false, "record artifacts in the columnar v2 format (decodes to an analysis-ready graph without event parsing; use with -record)")
	ggpconv := flag.String("ggpconv", "", "convert the given .ggp artifact (either version) to columnar v2 with derived sidecars and exit")
	ggpconvOut := flag.String("ggpconv-out", "", "output path for -ggpconv (default: <src>.v2.ggp)")
	ingestPath := flag.String("ingestbench", "", "measure cold artifact-ingest time (v1 vs columnar v2 vs v2+sidecars) for the given .ggp at -j 1 and the active -j, print a table, and add the numbers to -benchjson; use -fig none to skip the figures")
	ingestJobs := flag.String("ingest-jobs", "", "comma-separated decode worker counts for -ingestbench (overrides the default of 1 and the active -j, so the figure suite and the ingest sweep can run at different parallelism)")
	traceOut := flag.String("trace", "", "write a Perfetto/Chrome trace of all simulated runs to this file")
	stats := flag.Bool("stats", false, "print a runtime-metrics footer after each figure")
	phases := flag.Bool("phases", false, "print the engine's own phase table (simulate/analyze/ingest breakdown) after the run")
	selfProf := flag.String("selfprofile", "", "write a Chrome-trace profile of the benchmark run itself to this file (open at ui.perfetto.dev)")
	flag.Parse()

	expt.SetParallelism(*jobs)
	if *ggpconv != "" {
		if err := convertArtifact(*ggpconv, *ggpconvOut); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	expt.SetRecordV2(*ggpV2)
	if *record != "" {
		expt.SetRecordDir(*record)
	}
	if *replay != "" {
		expt.SetReplayDir(*replay)
	}
	// -benchjson reports the phase breakdown, so it profiles implicitly.
	// EnableSelfProfile must follow SetParallelism so the run-pool
	// telemetry attaches to the live pool.
	profiling := *phases || *selfProf != "" || *benchOut != ""
	if profiling {
		expt.EnableSelfProfile(obs.New())
	}
	if *traceOut != "" || *stats {
		expt.Instr = &expt.Instrumentation{
			CaptureEvents: *traceOut != "",
			PrintFooter:   *stats,
		}
	}

	type step struct {
		id  string
		run func() error
	}
	w := os.Stdout
	steps := []step{
		{"1", func() error { _, err := expt.Figure1(w, *cores); return err }},
		{"2", func() error { _, err := expt.Figure2(w); return err }},
		{"4", func() error { _, err := expt.Figure4(w); return err }},
		{"5", func() error { _, err := expt.Figure5(w); return err }},
		{"sort", func() error { _, err := expt.SortPageTable(w); return err }},
		{"6", func() error { _, err := expt.Figure6(w); return err }},
		{"7", func() error { _, err := expt.Figure7(w); return err }},
		{"8", func() error { _, err := expt.Figure8(w); return err }},
		{"9", func() error { _, err := expt.Figure9Table1(w); return err }},
		{"11", func() error { _, err := expt.Figure11(w); return err }},
		{"others", func() error { _, err := expt.OtherBenchmarks(w); return err }},
		{"whatif", func() error { _, err := expt.WhatIfTable(w); return err }},
	}
	ran := false
	var failed []string
	var report benchfmt.Report
	start := time.Now()
	for _, s := range steps {
		// The what-if pass is opt-in: it runs for -fig whatif, or rides along
		// a full regeneration when -whatif is set.
		if s.id == "whatif" && *fig != "whatif" && !(*whatIf && *fig == "all") {
			continue
		}
		if *fig != "all" && *fig != s.id {
			continue
		}
		ran = true
		simBefore, memoBefore := expt.MemoStats()
		analyzeBefore := expt.AnalyzeStats()
		ingestBefore := expt.IngestStats()
		artBefore := expt.ArtifactCounters()
		figStart := time.Now()
		err := s.run()
		fr := benchfmt.Figure{
			ID:        s.id,
			OK:        err == nil,
			WallMS:    float64(time.Since(figStart)) / float64(time.Millisecond),
			AnalyzeMS: float64(expt.AnalyzeStats()-analyzeBefore) / float64(time.Millisecond),
			IngestMS:  float64(expt.IngestStats()-ingestBefore) / float64(time.Millisecond),
		}
		sim, memo := expt.MemoStats()
		fr.Simulated = sim - simBefore
		fr.Memoized = memo - memoBefore
		art := expt.ArtifactCounters()
		fr.ArtifactDecodes = art.Misses - artBefore.Misses
		fr.ArtifactHits = art.Hits - artBefore.Hits
		report.Figures = append(report.Figures, fr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: figure %s: %v\n", s.id, err)
			failed = append(failed, s.id)
			continue
		}
		fmt.Fprintln(w)
	}
	if *ingestPath != "" {
		ran = true
	}
	if !ran && *fig != "none" {
		fmt.Fprintf(os.Stderr, "grainbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	var selfProfile *obs.Profile
	if profiling {
		var err error
		selfProfile, err = expt.SelfProfile()
		if err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: self-profile: %v\n", err)
			failed = append(failed, "selfprofile")
		}
	}
	if *phases && selfProfile != nil {
		if err := obs.WriteTable(w, selfProfile); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			failed = append(failed, "phases")
		}
	}
	if *selfProf != "" && selfProfile != nil {
		if err := writeSelfProfile(*selfProf, selfProfile); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			failed = append(failed, "selfprofile")
		}
	}
	// Freeze the figure suite's stats before the ingest bench runs: its
	// derivation work (a full analysis of the benched artifact plus dozens
	// of giant decodes) would otherwise leak into the committed wall and
	// phase numbers and make reports incomparable across baselines. The
	// self-profile snapshot above already excludes it for the same reason.
	report.Parallelism = expt.Parallelism()
	report.Cores = *cores
	report.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	report.AnalyzeMS = float64(expt.AnalyzeStats()) / float64(time.Millisecond)
	report.IngestMS = float64(expt.IngestStats()) / float64(time.Millisecond)
	report.Simulated, report.Memoized = expt.MemoStats()
	if selfProfile != nil {
		report.Phases = benchfmt.Phases(selfProfile)
		report.Runpool = selfProfile.Pool
	}

	if *ingestPath != "" {
		jset := []int{1}
		if j := expt.Parallelism(); j != 1 {
			jset = append(jset, j)
		}
		if *ingestJobs != "" {
			jset = jset[:0]
			for _, f := range strings.Split(*ingestJobs, ",") {
				j, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || j < 1 {
					fmt.Fprintf(os.Stderr, "grainbench: bad -ingest-jobs %q\n", *ingestJobs)
					os.Exit(2)
				}
				jset = append(jset, j)
			}
		}
		var entries []benchfmt.IngestEntry
		for _, j := range jset {
			es, err := ingestBench(*ingestPath, j)
			if err != nil {
				fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
				failed = append(failed, "ingestbench")
				break
			}
			entries = append(entries, es...)
		}
		if len(entries) > 0 {
			writeIngestTable(entries)
			report.Ingest = entries
		}
	}

	if *benchOut != "" {
		if err := writeBenchJSON(*benchOut, &report); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			failed = append(failed, "benchjson")
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "grainbench: %v\n", err)
			failed = append(failed, "trace")
		}
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "grainbench: %d step(s) failed: %s\n",
			len(failed), strings.Join(failed, ", "))
		os.Exit(1)
	}
}

// writeBenchJSON writes the benchmark report (conventionally named
// BENCH_<date>.json) for regression tracking across commits; benchdiff
// compares two of them.
func writeBenchJSON(path string, r *benchfmt.Report) error {
	if err := benchfmt.Write(path, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "grainbench: wrote %s (%d figures, %.0f ms, %d simulated / %d memoized runs, %d phases)\n",
		path, len(r.Figures), r.WallMS, r.Simulated, r.Memoized, len(r.Phases))
	return nil
}

// writeSelfProfile exports the engine's own phase spans as a Chrome trace.
func writeSelfProfile(path string, prof *obs.Profile) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.SelfProfile(f, prof); err != nil {
		return fmt.Errorf("writing self-profile %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "grainbench: wrote %s (%d spans) — open at https://ui.perfetto.dev\n",
		path, len(prof.Spans))
	return nil
}

// writeTrace exports every instrumented run as one Perfetto trace file.
func writeTrace(path string) error {
	runs := make([]export.PerfettoRun, 0, len(expt.Instr.Runs))
	for _, r := range expt.Instr.Runs {
		runs = append(runs, export.PerfettoRun{
			Label: r.Label, Trace: r.Trace, Events: r.Events,
			Dropped: r.Dropped, Critical: r.Critical,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.Perfetto(f, runs); err != nil {
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "grainbench: wrote %s (%d runs) — open at https://ui.perfetto.dev\n",
		path, len(runs))
	return nil
}
