package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sync"
	"testing"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/expt"
	"graingraph/internal/ggp"
	"graingraph/internal/lod"
	"graingraph/internal/runpool"
	"graingraph/internal/workloads"
)

// fixture is a real recorded artifact (the fib workload simulated once per
// test process) plus the reference renderings computed directly through the
// expt writers — the exact bytes every endpoint must serve.
type fixtureData struct {
	raw       []byte // the .ggp artifact body
	id        string // its content address
	summary   []byte
	highlight []byte
	whatif    []byte
	windowDot []byte // window with depth=2, top=4, dot format
}

var fixture = sync.OnceValues(func() (*fixtureData, error) {
	inst, err := workloads.Get("fib", workloads.VariantDefault)
	if err != nil {
		return nil, err
	}
	run, err := expt.Run(inst, expt.Config{Cores: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := ggp.WriteTrace(&buf, run.Trace); err != nil {
		return nil, err
	}
	f := &fixtureData{raw: buf.Bytes()}
	f.id = runpool.KeyOfBytes(f.raw).Hex()

	// Reference path: decode the artifact and analyze it exactly like
	// `grainview -artifact` does, on a private pool.
	pool := runpool.New(4)
	tr, err := ggp.ReadTrace(bytes.NewReader(f.raw))
	if err != nil {
		return nil, err
	}
	res := expt.AnalyzeTraceOn(pool, tr, nil, expt.Config{}, nil)

	var w bytes.Buffer
	if err := expt.WriteSummary(&w, res); err != nil {
		return nil, err
	}
	f.summary = append([]byte(nil), w.Bytes()...)

	w.Reset()
	if err := expt.WriteHighlight(&w, res); err != nil {
		return nil, err
	}
	f.highlight = append([]byte(nil), w.Bytes()...)

	w.Reset()
	ps, err := expt.WhatIfRank(res, pool, nil)
	if err != nil {
		return nil, err
	}
	if err := expt.WriteWhatIfTable(&w, res, ps); err != nil {
		return nil, err
	}
	f.whatif = append([]byte(nil), w.Bytes()...)

	w.Reset()
	ix := lod.Build(res.Graph, res.Assessment)
	wg, _, err := ix.Window(lod.WindowOptions{Depth: 2, Top: 4})
	if err != nil {
		return nil, err
	}
	core.Layout(wg)
	if err := export.DOTWithWhatIfPool(&w, wg, res.Assessment, export.ViewStructure, nil, pool); err != nil {
		return nil, err
	}
	f.windowDot = append([]byte(nil), w.Bytes()...)
	return f, nil
})

// newTestServer builds a server on a per-test store directory.
func newTestServer(t *testing.T, cap int) *server {
	t.Helper()
	s, err := newServer(serverConfig{Dir: t.TempDir(), Workers: 4, AnalysisCap: cap})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do issues one request against the in-process handler.
func do(t *testing.T, s *server, method, path, tenant string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

func upload(t *testing.T, s *server, body []byte) map[string]any {
	t.Helper()
	w := do(t, s, "POST", "/artifacts", "", body)
	if w.Code != http.StatusCreated && w.Code != http.StatusOK {
		t.Fatalf("upload: status %d: %s", w.Code, w.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("upload response: %v", err)
	}
	return resp
}

func TestUploadAndServeByteIdentical(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 0)

	resp := upload(t, s, f.raw)
	if resp["id"] != f.id {
		t.Fatalf("upload id = %v, want content address %s", resp["id"], f.id)
	}
	if resp["existed"] != false {
		t.Errorf("first upload reported existed=%v", resp["existed"])
	}

	endpoints := []struct {
		path string
		want []byte
	}{
		{"/artifacts/" + f.id + "/summary", f.summary},
		{"/artifacts/" + f.id + "/highlight", f.highlight},
		{"/artifacts/" + f.id + "/whatif", f.whatif},
		{"/artifacts/" + f.id + "/window?depth=2&top=4&format=dot", f.windowDot},
	}
	for _, ep := range endpoints {
		w := do(t, s, "GET", ep.path, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", ep.path, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), ep.want) {
			t.Errorf("GET %s: body differs from the expt writer output\ngot:  %q\nwant: %q",
				ep.path, truncate(w.Body.Bytes()), truncate(ep.want))
		}
	}
}

func truncate(b []byte) string {
	if len(b) > 300 {
		return string(b[:300]) + "..."
	}
	return string(b)
}

// TestRepeatedUploadZeroReanalysis is the tentpole's memoization guarantee:
// uploading the same artifact again and re-querying every endpoint must not
// decode, analyze, or render anything a second time — the memo counters
// prove it.
func TestRepeatedUploadZeroReanalysis(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 0)

	upload(t, s, f.raw)
	paths := []string{
		"/artifacts/" + f.id + "/summary",
		"/artifacts/" + f.id + "/highlight",
		"/artifacts/" + f.id + "/whatif",
		"/artifacts/" + f.id + "/window?depth=2&top=4",
	}
	for _, p := range paths {
		if w := do(t, s, "GET", p, "", nil); w.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", p, w.Code, w.Body.String())
		}
	}
	decodes := s.decodes.Counters().Misses
	analyses := s.analyses.Counters().Misses
	renders := s.renders.Counters().Misses
	if analyses != 1 {
		t.Fatalf("first pass ran %d analyses, want exactly 1", analyses)
	}

	// Second pass: identical upload plus every query again.
	resp := upload(t, s, f.raw)
	if resp["existed"] != true || resp["memo_hit"] != true {
		t.Errorf("re-upload: existed=%v memo_hit=%v, want true/true", resp["existed"], resp["memo_hit"])
	}
	for _, p := range paths {
		if w := do(t, s, "GET", p, "", nil); w.Code != http.StatusOK {
			t.Fatalf("GET %s (repeat): status %d", p, w.Code)
		}
	}
	if got := s.decodes.Counters().Misses; got != decodes {
		t.Errorf("repeat pass re-decoded: %d decode runs, want %d", got, decodes)
	}
	if got := s.analyses.Counters().Misses; got != analyses {
		t.Errorf("repeat pass re-analyzed: %d analysis runs, want %d", got, analyses)
	}
	if got := s.renders.Counters().Misses; got != renders {
		t.Errorf("repeat pass re-rendered: %d render runs, want %d", got, renders)
	}
}

// TestDiskMemoSurvivesCacheEviction drops the in-memory caches (simulating
// eviction or a restart) and checks the disk memo still serves the exact
// bytes without a fresh analysis... until the memo is also gone.
func TestDiskMemoSurvivesCacheReset(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 0)
	upload(t, s, f.raw)
	p := "/artifacts/" + f.id + "/summary"
	if w := do(t, s, "GET", p, "", nil); w.Code != http.StatusOK {
		t.Fatal(w.Body.String())
	}

	s.decodes.Reset()
	s.analyses.Reset()
	s.renders.Reset()

	w := do(t, s, "GET", p, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("after reset: status %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), f.summary) {
		t.Error("disk-memo response differs from the expt writer output")
	}
	if got := s.analyses.Counters().Misses; got != 0 {
		t.Errorf("disk memo hit still ran %d analyses, want 0", got)
	}
}

func TestUnknownAndMalformedArtifacts(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 0)

	if w := do(t, s, "GET", "/artifacts/zzzz/summary", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("malformed id: status %d, want 400", w.Code)
	}
	// Valid address, never uploaded: 404 — and the failure must not stick.
	p := "/artifacts/" + f.id + "/summary"
	if w := do(t, s, "GET", p, "", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown artifact: status %d, want 404", w.Code)
	}
	upload(t, s, f.raw)
	if w := do(t, s, "GET", p, "", nil); w.Code != http.StatusOK {
		t.Errorf("after upload, cached 404 was served: status %d, want 200", w.Code)
	}

	// Corrupt body: the CRC/validate gate rejects it at ingest.
	bad := append([]byte(nil), f.raw...)
	bad[len(bad)/2] ^= 0xff
	if w := do(t, s, "POST", "/artifacts", "", bad); w.Code != http.StatusBadRequest {
		t.Errorf("corrupt upload: status %d, want 400: %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "POST", "/artifacts", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("empty upload: status %d, want 400", w.Code)
	}
	if w := do(t, s, "GET", "/artifacts/"+f.id+"/window?format=tiff", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("unknown window format: status %d, want 400", w.Code)
	}
}

// TestConcurrentTenantsShareOneAnalysis hammers every endpoint from many
// tenants at once (run under -race in CI): all responses must be the exact
// reference bytes, and the whole storm must cost exactly one analysis.
func TestConcurrentTenantsShareOneAnalysis(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 4)
	upload(t, s, f.raw)

	want := map[string][]byte{
		"/artifacts/" + f.id + "/summary":                         f.summary,
		"/artifacts/" + f.id + "/highlight":                       f.highlight,
		"/artifacts/" + f.id + "/whatif":                          f.whatif,
		"/artifacts/" + f.id + "/window?depth=2&top=4&format=dot": f.windowDot,
	}
	const tenants = 4
	const perTenant = 8
	errc := make(chan error, tenants*perTenant*len(want))
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for p, expect := range want {
					w := do(t, s, "GET", p, tenant, nil)
					if w.Code != http.StatusOK {
						errc <- fmt.Errorf("%s GET %s: status %d", tenant, p, w.Code)
						continue
					}
					if !bytes.Equal(w.Body.Bytes(), expect) {
						errc <- fmt.Errorf("%s GET %s: bytes differ", tenant, p)
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := s.analyses.Counters().Misses; got != 1 {
		t.Errorf("concurrent storm ran %d analyses, want exactly 1", got)
	}
}

func TestStatszAndHealthz(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 2)
	upload(t, s, f.raw)
	do(t, s, "GET", "/artifacts/"+f.id+"/summary", "acme", nil)

	w := do(t, s, "GET", "/healthz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}
	w = do(t, s, "GET", "/statsz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("statsz: %d", w.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatalf("statsz is not JSON: %v", err)
	}
	for _, key := range []string{"requests", "caches", "phases", "admission", "cache_entries"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("statsz missing %q section", key)
		}
	}
}

// TestFairGateRoundRobin drives the admission queue directly: with one slot
// and two tenants queued at different depths, grants must alternate between
// tenants rather than drain the deep queue first.
func TestFairGateRoundRobin(t *testing.T) {
	g := newFairGate(1)
	release := g.acquire("a") // take the only slot

	order := make(chan string, 4)
	var wg sync.WaitGroup
	queued := 0
	enqueue := func(tenant string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel := g.acquire(tenant)
			order <- tenant
			rel()
		}()
		queued++
		// Wait until this waiter is actually queued, so the queue order is
		// deterministic.
		for {
			g.mu.Lock()
			n := 0
			for _, q := range g.queues {
				n += len(q)
			}
			g.mu.Unlock()
			if n >= queued {
				break
			}
			runtime.Gosched()
		}
	}
	// noisy queues three requests before quiet queues one.
	enqueue("noisy")
	enqueue("noisy")
	enqueue("noisy")
	enqueue("quiet")

	release()
	wg.Wait()
	close(order)
	var got []string
	for tenant := range order {
		got = append(got, tenant)
	}
	// Round-robin: noisy (first in ring), then quiet, then noisy's rest.
	want := []string{"noisy", "quiet", "noisy", "noisy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", got, want)
		}
	}
	if waits, _ := g.queueStats(); waits != 4 {
		t.Errorf("queueStats waits = %d, want 4", waits)
	}
}

// TestQueryEndpoint checks GET /artifacts/{id}/query against the expt
// writer grainview's -query flag uses (byte-identity, both sources), the
// render memo, and the structured 400 for malformed or unbindable queries.
func TestQueryEndpoint(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, 0)
	upload(t, s, f.raw)

	pool := runpool.New(4)
	tr, err := ggp.ReadTrace(bytes.NewReader(f.raw))
	if err != nil {
		t.Fatal(err)
	}
	res := expt.AnalyzeTraceOn(pool, tr, nil, expt.Config{}, nil)

	queries := []string{
		"from grains | filter exec > 0 | groupby loc | agg count, sum(exec), mean(benefit) | sort sum_exec desc | topk 5",
		"filter benefit < 1 | sort exec desc, id asc | topk 10 | select id,loc,exec,benefit",
		"from tasks | filter depth >= 1 | sort subwork desc | topk 3 | select id,depth,subwork,subtasks",
	}
	for _, q := range queries {
		var ref bytes.Buffer
		if err := expt.WriteQuery(&ref, res, q, pool); err != nil {
			t.Fatalf("reference WriteQuery(%q): %v", q, err)
		}
		path := "/artifacts/" + f.id + "/query?q=" + url.QueryEscape(q)
		w := do(t, s, "GET", path, "", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("query %q: status %d: %s", q, w.Code, w.Body.String())
		}
		if !bytes.Equal(w.Body.Bytes(), ref.Bytes()) {
			t.Errorf("query %q: response differs from grainview's writer\nserver:\n%s\nreference:\n%s",
				q, w.Body.String(), ref.String())
		}
		// Second hit serves from the render memo, byte-identical.
		w2 := do(t, s, "GET", path, "", nil)
		if !bytes.Equal(w2.Body.Bytes(), ref.Bytes()) {
			t.Errorf("query %q: memoized response differs", q)
		}
	}

	// Malformed and unbindable queries are the client's fault: structured
	// 400, never a 500.
	for _, q := range []string{"bogus nonsense", "filter nosuchcol > 1", ""} {
		w := do(t, s, "GET", "/artifacts/"+f.id+"/query?q="+url.QueryEscape(q), "", nil)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400: %s", q, w.Code, w.Body.String())
		}
		var body map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("query %q: non-JSON error body: %v", q, err)
		}
		if body["error"] != "bad-query" {
			t.Errorf("query %q: error = %v, want bad-query", q, body["error"])
		}
		if body["detail"] == nil || body["hint"] == nil {
			t.Errorf("query %q: missing detail/hint in %v", q, body)
		}
	}
}

// TestUpgradeInPlaceAndEvict pins the columnar-upgrade lifecycle: after
// the first analysis of a v1 upload, the stored artifact is rewritten as
// columnar v2 with derived sidecars; with -debug, POST /debug/evict drops
// every warm tier, and the next request — served entirely from the
// upgraded artifact — is byte-identical to the pre-upgrade response.
func TestUpgradeInPlaceAndEvict(t *testing.T) {
	f, err := fixture()
	if err != nil {
		t.Fatal(err)
	}
	s, err := newServer(serverConfig{Dir: t.TempDir(), Workers: 4, Debug: true})
	if err != nil {
		t.Fatal(err)
	}
	upload(t, s, f.raw)

	w := do(t, s, "GET", "/artifacts/"+f.id+"/summary", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("summary: status %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), f.summary) {
		t.Fatal("summary differs from reference before upgrade")
	}

	// The stored artifact must now be columnar v2 with fresh sidecars.
	stored, err := os.ReadFile(s.artifactPath(f.id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored[:len(ggp.Magic)], []byte(ggp.Magic)) || stored[len(ggp.Magic)] != 2 {
		t.Fatalf("stored artifact not upgraded to v2 (version byte %d)", stored[len(ggp.Magic)])
	}
	dec, err := ggp.Decode(stored, nil, nil)
	if err != nil {
		t.Fatalf("upgraded artifact does not decode: %v", err)
	}
	if !dec.HasSidecars() {
		t.Fatal("upgraded artifact has no fresh sidecars")
	}

	ev := do(t, s, "POST", "/debug/evict", "", nil)
	if ev.Code != http.StatusOK {
		t.Fatalf("evict: status %d: %s", ev.Code, ev.Body.String())
	}
	if n := s.analyses.Len() + s.decodes.Len() + s.renders.Len(); n != 0 {
		t.Fatalf("evict left %d warm cache entries", n)
	}

	// Cold request over the upgraded artifact: decode adopts the graph and
	// sidecars, and the rendered bytes stay identical.
	misses := s.decodes.Counters().Misses
	w2 := do(t, s, "GET", "/artifacts/"+f.id+"/summary", "", nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("post-evict summary: status %d: %s", w2.Code, w2.Body.String())
	}
	if !bytes.Equal(w2.Body.Bytes(), f.summary) {
		t.Fatal("post-evict summary differs from pre-upgrade response")
	}
	if got := s.decodes.Counters().Misses; got != misses+1 {
		t.Fatalf("post-evict request decoded %d times, want exactly 1 fresh decode", got-misses)
	}

	// A second query-source render must also match: the grains table now
	// comes from the query sidecar.
	q := "/artifacts/" + f.id + "/query?q=" + url.QueryEscape("sort exec desc, id asc | topk 5 by exec")
	first := do(t, s, "GET", q, "", nil)
	do(t, s, "POST", "/debug/evict", "", nil)
	second := do(t, s, "GET", q, "", nil)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("query status %d / %d", first.Code, second.Code)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("query render differs after evict + sidecar-assisted decode")
	}

	// Without -debug the endpoint must not exist.
	plain := newTestServer(t, 0)
	if w := do(t, plain, "POST", "/debug/evict", "", nil); w.Code == http.StatusOK {
		t.Fatalf("evict reachable without Debug (status %d)", w.Code)
	}
}
