package main

import (
	"sync"
	"sync/atomic"
	"time"
)

// fairGate is the per-tenant fair admission queue in front of the analysis
// stack: at most slots requests hold an analysis slot at once, and when
// requests queue, freed slots are granted round-robin across tenants — a
// tenant replaying one hot artifact in a tight loop cannot starve another
// tenant's first request, whatever the arrival order.
//
// Tenancy is declared, not authenticated (the X-Tenant header): the queue
// is a fairness mechanism, not a security boundary.
type fairGate struct {
	mu     sync.Mutex
	free   int
	queues map[string][]chan struct{}
	// ring holds tenants with waiters, in first-wait order; next is the
	// round-robin cursor into it.
	ring []string
	next int

	waits  atomic.Int64
	waitNS atomic.Int64
}

// newFairGate admits at most slots concurrent holders; slots < 1 is
// normalized to 1.
func newFairGate(slots int) *fairGate {
	if slots < 1 {
		slots = 1
	}
	return &fairGate{free: slots, queues: make(map[string][]chan struct{})}
}

// acquire blocks until tenant is granted a slot and returns the release
// function. Slots free with no one queued are granted immediately;
// otherwise the request joins its tenant's FIFO queue and waits for the
// round-robin grant.
func (g *fairGate) acquire(tenant string) (release func()) {
	g.mu.Lock()
	if g.free > 0 && len(g.ring) == 0 {
		g.free--
		g.mu.Unlock()
		return g.release
	}
	ch := make(chan struct{})
	if len(g.queues[tenant]) == 0 {
		g.ring = append(g.ring, tenant)
	}
	g.queues[tenant] = append(g.queues[tenant], ch)
	g.mu.Unlock()

	start := time.Now()
	<-ch
	g.waits.Add(1)
	g.waitNS.Add(int64(time.Since(start)))
	return g.release
}

// release frees the caller's slot, handing it to the next queued tenant in
// round-robin order when anyone is waiting.
func (g *fairGate) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.ring) == 0 {
		g.free++
		return
	}
	if g.next >= len(g.ring) {
		g.next = 0
	}
	tenant := g.ring[g.next]
	q := g.queues[tenant]
	ch := q[0]
	if len(q) == 1 {
		delete(g.queues, tenant)
		g.ring = append(g.ring[:g.next], g.ring[g.next+1:]...)
		// next now points at the tenant after the removed one; wrap is
		// handled on the next release.
	} else {
		g.queues[tenant] = q[1:]
		g.next++
	}
	close(ch) // the slot transfers to the waiter
}

// queueStats returns how many waits completed and their total duration.
func (g *fairGate) queueStats() (waits int64, waited time.Duration) {
	return g.waits.Load(), time.Duration(g.waitNS.Load())
}
