// Command grainserved serves grain-graph analyses over HTTP: a multi-tenant,
// content-addressed artifact service on top of the same analysis stack the
// grainview CLI drives.
//
//	grainserved -listen :8080 -store /var/lib/graingraph &
//	curl -s -X POST --data-binary @run.ggp localhost:8080/artifacts
//	curl -s localhost:8080/artifacts/<id>/summary
//	curl -s localhost:8080/artifacts/<id>/highlight
//	curl -s localhost:8080/artifacts/<id>/whatif
//	curl -s 'localhost:8080/artifacts/<id>/window?depth=2&top=8&format=dot'
//	curl -s localhost:8080/statsz
//
// Uploads are stored under their content address (sha-256 of the bytes), so
// re-uploading an artifact — or two tenants uploading the same run — never
// re-parses or re-analyzes anything: every view is memoized per artifact in
// memory (bounded, LRU) and on disk. Clients may declare a tenant with the
// X-Tenant header; queued analyses are admitted round-robin across tenants.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "address to listen on")
		store   = flag.String("store", "", "artifact store directory (required)")
		workers = flag.Int("j", runtime.GOMAXPROCS(0), "analysis pool worker count")
		admit   = flag.Int("admit", 0, "max concurrently admitted analyses (0 = same as -j)")
		cache   = flag.Int("cache", 64, "max in-memory analyzed artifacts (0 = unbounded)")
		verbose = flag.Bool("v", false, "log every request to stderr")
		debug   = flag.Bool("debug", false, "expose POST /debug/evict (drops all warm caches; for cold-path load testing only)")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "grainserved: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	srv, err := newServer(serverConfig{
		Dir:         *store,
		Workers:     *workers,
		AnalysisCap: *cache,
		Admit:       *admit,
		Verbose:     *verbose,
		Debug:       *debug,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "grainserved: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "grainserved: listening on %s (store %s, %d workers)\n",
		*listen, *store, *workers)
	if err := http.ListenAndServe(*listen, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "grainserved: %v\n", err)
		os.Exit(1)
	}
}
