package main

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/expt"
	"graingraph/internal/ggp"
	"graingraph/internal/lod"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/runpool"
	"graingraph/internal/whatif"
)

// maxUploadBytes bounds one artifact upload; the ggp reader additionally
// caps every section at 64 MiB.
const maxUploadBytes = 1 << 30

// serverConfig shapes a server instance.
type serverConfig struct {
	// Dir is the content-addressed artifact store: uploads land as
	// <hex(KeyOfBytes(body))>.ggp, rendered responses are memoized under
	// Dir/memo.
	Dir string
	// Workers bounds the analysis pool shared by all requests.
	Workers int
	// AnalysisCap bounds the in-memory analyzed-artifact cache (entries);
	// <= 0 keeps it unbounded. Render and decode caches scale from it.
	AnalysisCap int
	// Admit bounds concurrently admitted analyses (the fair queue's slot
	// count); <= 0 selects Workers.
	Admit   int
	Verbose bool
	// Debug exposes the test-only /debug/evict endpoint (grainload -cold
	// uses it to measure cold-path latency). Off by default: eviction is
	// not something production clients should reach.
	Debug bool
}

// analysis is one artifact's fully derived state: the analyzed result
// plus lazily built, shared views over it (the lod index for windowed
// queries, the ranked what-if projections). All fields are immutable after
// their sync.Once completes, so concurrent requests share them freely.
type analysis struct {
	res *expt.Result

	// hadSidecars records whether the decoded artifact already carried
	// fresh derived sidecars; when it did not, upgradeOnce rewrites the
	// stored artifact as columnar v2 with sidecars after first analysis.
	hadSidecars bool
	upgradeOnce sync.Once

	rankOnce sync.Once
	rank     []whatif.Projection
	rankErr  error
}

// lod returns the shared level-of-detail index (adopted from the
// artifact's sidecar when present, built on first use otherwise).
func (a *analysis) lod() *lod.Index {
	return a.res.Lod()
}

// server is the grain-graph artifact service: a content-addressed store of
// .ggp artifacts with cached analysis views over them. All state is
// per-instance — no package-level pools or registries — so tests run many
// servers in one process and the expt CLI globals stay untouched.
type server struct {
	cfg  serverConfig
	pool *runpool.Runner
	gate *fairGate
	mux  *http.ServeMux

	// Cache tiers, all content-addressed and single-flight: decodes
	// memoizes artifact decodes (either format; columnar v2 arrives
	// analysis-ready), analyses the full metric derivation, renders the
	// final response bytes per (artifact, endpoint, params). The render
	// tier is backed by an on-disk memo (Dir/memo), so a hot artifact
	// serves without re-analysis even across restarts or after in-memory
	// eviction.
	decodes  *runpool.Cache[*ggp.Decoded]
	analyses *runpool.Cache[*analysis]
	renders  *runpool.Cache[[]byte]

	phases   *phaseStats
	requests *requestStats
	start    time.Time
}

func newServer(cfg serverConfig) (*server, error) {
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "memo"), 0o755); err != nil {
		return nil, err
	}
	admit := cfg.Admit
	if admit <= 0 {
		admit = cfg.Workers
	}
	s := &server{
		cfg:      cfg,
		pool:     runpool.New(cfg.Workers),
		gate:     newFairGate(admit),
		mux:      http.NewServeMux(),
		decodes:  runpool.NewCache[*ggp.Decoded](),
		analyses: runpool.NewCache[*analysis](),
		renders:  runpool.NewCache[[]byte](),
		phases:   newPhaseStats(),
		requests: newRequestStats(),
		start:    time.Now(),
	}
	if cfg.AnalysisCap > 0 {
		s.analyses.SetCapacity(cfg.AnalysisCap)
		// Decoded traces are cheaper than analyses, rendered bytes cheaper
		// still; keep proportionally more of each.
		s.decodes.SetCapacity(2 * cfg.AnalysisCap)
		s.renders.SetCapacity(8 * cfg.AnalysisCap)
	}
	s.mux.HandleFunc("POST /artifacts", s.instrument("POST /artifacts", s.handleUpload))
	s.mux.HandleFunc("GET /artifacts/{id}/summary", s.instrument("GET summary", s.query("summary")))
	s.mux.HandleFunc("GET /artifacts/{id}/highlight", s.instrument("GET highlight", s.query("highlight")))
	s.mux.HandleFunc("GET /artifacts/{id}/whatif", s.instrument("GET whatif", s.query("whatif")))
	s.mux.HandleFunc("GET /artifacts/{id}/window", s.instrument("GET window", s.query("window")))
	s.mux.HandleFunc("GET /artifacts/{id}/query", s.instrument("GET query", s.query("query")))
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	if cfg.Debug {
		s.mux.HandleFunc("POST /debug/evict", s.handleEvict)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

func (s *server) Handler() http.Handler { return s.mux }

// httpError is a handler failure with a status code and a structured body.
type httpError struct {
	status int
	body   map[string]any
}

func (e *httpError) Error() string { return fmt.Sprintf("%v", e.body["error"]) }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, body: map[string]any{"error": fmt.Sprintf(format, args...)}}
}

// writeErr renders err as a JSON error response. *httpError carries its own
// status and fields; *export.HugeGraphError maps to 413 with the
// structured "use a window" shape; *query.Error (a malformed or unbindable
// query string) maps to 400 with the offending fragment — the client's
// query is at fault, never the server, so it must not surface as a 500;
// anything else is a 500.
func writeErr(w http.ResponseWriter, err error) {
	var (
		he   *httpError
		huge *export.HugeGraphError
		qe   *query.Error
	)
	switch {
	case errors.As(err, &he):
	case errors.As(err, &huge):
		he = &httpError{status: http.StatusRequestEntityTooLarge, body: map[string]any{
			"error": "graph-too-large",
			"nodes": huge.Nodes,
			"limit": huge.Limit,
			"hint":  "full exports past the limit are refused; use the window endpoint (or narrow depth/top) for a level-of-detail view",
		}}
	case errors.As(err, &qe):
		he = &httpError{status: http.StatusBadRequest, body: map[string]any{
			"error":  "bad-query",
			"src":    qe.Src,
			"detail": qe.Msg,
			"hint":   "grammar: [from grains|tasks |] filter <expr> | groupby <cols> | agg <calls> | sort <col> [asc|desc] | topk <n> [by <col> [asc|desc]] | select <cols>",
		}}
	default:
		he = errf(http.StatusInternalServerError, "%v", err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(he.body)
}

// tenantOf extracts the declared tenant for fair admission.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anonymous"
}

// instrument wraps a handler with the per-request observability envelope:
// one obs.Profiler per request, a root span named after the route, phase
// aggregation into /statsz, and the verbose access log.
func (s *server) instrument(route string, h func(*obs.Span, http.ResponseWriter, *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		prof := obs.New()
		prof.TrackMem = false // MemStats reads are too hot for a server loop
		root := prof.Begin(route)
		err := h(root, w, r)
		root.End()
		s.requests.record(route, err == nil)
		if spans, serr := prof.Snapshot(); serr == nil {
			s.phases.record(spans)
		}
		if err != nil {
			writeErr(w, err)
		}
		if s.cfg.Verbose {
			status := "ok"
			if err != nil {
				status = err.Error()
			}
			fmt.Fprintf(os.Stderr, "grainserved: %s %s [%s] %s\n",
				r.Method, r.URL.Path, tenantOf(r), status)
		}
	}
}

// parseID decodes an artifact id (lowercase hex content address) into its
// cache key.
func parseID(id string) (runpool.Key, error) {
	raw, err := hex.DecodeString(id)
	var k runpool.Key
	if err != nil || len(raw) != len(k) {
		return k, errf(http.StatusBadRequest, "malformed artifact id %q: want %d hex chars", id, 2*len(k))
	}
	copy(k[:], raw)
	return k, nil
}

// artifactPath is where an artifact's bytes live in the store.
func (s *server) artifactPath(id string) string {
	return filepath.Join(s.cfg.Dir, id+".ggp")
}

// atomicWrite writes data to path via temp file + rename, so concurrent
// writers of the same content-addressed name are safe: identical bytes,
// last rename wins.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// handleUpload is POST /artifacts: content-address the body, validate it
// (CRC trailer + Trace.Validate via the ggp reader), and store it.
// Re-uploading identical bytes is a decode-memo hit — zero re-parse, zero
// re-analysis — and the response says so.
func (s *server) handleUpload(sp *obs.Span, w http.ResponseWriter, r *http.Request) error {
	isp := sp.Child("ingest:read")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	isp.End()
	if err != nil {
		return errf(http.StatusRequestEntityTooLarge, "reading upload: %v", err)
	}
	if len(body) == 0 {
		return errf(http.StatusBadRequest, "empty upload: expected a .ggp artifact body")
	}
	key := runpool.KeyOfBytes(body)
	id := key.Hex()

	dsp := sp.Child("ingest:decode")
	dec, err, hit := s.decodes.Do(key, func() (*ggp.Decoded, error) {
		return ggp.Decode(body, s.pool, sp)
	})
	dsp.End()
	if err != nil {
		return errf(http.StatusBadRequest, "invalid artifact: %v", err)
	}
	tr := dec.Trace

	existed := true
	if _, err := os.Stat(s.artifactPath(id)); err != nil {
		wsp := sp.Child("ingest:store")
		werr := atomicWrite(s.artifactPath(id), body)
		wsp.End()
		if werr != nil {
			return fmt.Errorf("storing artifact: %w", werr)
		}
		existed = false
	}

	w.Header().Set("Content-Type", "application/json")
	if !existed {
		w.WriteHeader(http.StatusCreated)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(map[string]any{
		"id":       id,
		"program":  tr.Program,
		"cores":    tr.Cores,
		"grains":   tr.NumGrains(),
		"existed":  existed,
		"memo_hit": hit,
	})
}

// loadDecoded decodes the stored artifact for key through the decode
// memo. Columnar v2 artifacts arrive with a ready-made graph (and, when
// sidecars are fresh, the lod index and query table too). Load failures
// are forgotten rather than cached: "not found" is store state, not
// content, and must clear once the artifact is uploaded.
func (s *server) loadDecoded(key runpool.Key, sp *obs.Span) (*ggp.Decoded, error) {
	dec, err, _ := s.decodes.Do(key, func() (*ggp.Decoded, error) {
		raw, err := os.ReadFile(s.artifactPath(key.Hex()))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, errf(http.StatusNotFound, "unknown artifact %s: upload it first (POST /artifacts)", key.Hex())
			}
			return nil, err
		}
		return ggp.Decode(raw, s.pool, sp)
	})
	if err != nil {
		s.decodes.Forget(key)
	}
	return dec, err
}

// analysisOf returns the cached full analysis for key, computing it at most
// once per process (single-flight) and evicting by LRU past the capacity
// bound. The analysis runs on the server's own pool via the re-entrant
// expt.AnalyzeDecodedOn — never through the package-global pool. After the
// first analysis of an artifact that lacked derived sidecars, the stored
// artifact is upgraded in place to columnar v2 with sidecars, so the next
// cold decode is analysis-ready without rebuilding anything.
func (s *server) analysisOf(key runpool.Key, sp *obs.Span) (*analysis, error) {
	a, err, _ := s.analyses.Do(key, func() (*analysis, error) {
		dec, err := s.loadDecoded(key, sp)
		if err != nil {
			return nil, err
		}
		res := expt.AnalyzeDecodedOn(s.pool, dec, nil, expt.Config{}, sp)
		return &analysis{res: res, hadSidecars: dec.HasSidecars()}, nil
	})
	if err != nil {
		s.analyses.Forget(key)
		return a, err
	}
	s.upgradeArtifact(a, key, sp)
	return a, nil
}

// upgradeArtifact rewrites the stored artifact as columnar v2 with full
// derived sidecars, once per analysis lifetime, when the decoded form
// lacked them. The artifact keeps its id: ids are content addresses of
// the uploaded bytes (that is what clients hold), and the upgraded file
// decodes to the same trace and graph — re-uploading the original bytes
// still maps to the same id, it just decodes slower than the stored form.
func (s *server) upgradeArtifact(a *analysis, key runpool.Key, sp *obs.Span) {
	a.upgradeOnce.Do(func() {
		if a.hadSidecars {
			return
		}
		usp := sp.Child("upgrade:ggp2")
		defer usp.End()
		data, err := ggp.EncodeV2(a.res.Trace, a.res.Graph, expt.Sidecars(a.res, s.pool))
		if err == nil {
			err = atomicWrite(s.artifactPath(key.Hex()), data)
		}
		if err != nil && s.cfg.Verbose {
			// Upgrade failures only cost future decode speed, never
			// correctness; the original artifact stays in place.
			fmt.Fprintf(os.Stderr, "grainserved: upgrade %s: %v\n", key.Hex(), err)
		}
	})
}

// rankOf returns the artifact's ranked what-if projections, computed once
// and shared.
func (a *analysis) rankOf(pool *runpool.Runner, sp *obs.Span) ([]whatif.Projection, error) {
	a.rankOnce.Do(func() {
		a.rank, a.rankErr = expt.WhatIfRank(a.res, pool, sp)
	})
	return a.rank, a.rankErr
}

// windowParams extracts ?root=&depth=&top= into lod.WindowOptions.
func windowParams(r *http.Request) (lod.WindowOptions, error) {
	var o lod.WindowOptions
	q := r.URL.Query()
	o.Root = profile.GrainID(q.Get("root"))
	if v := q.Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, errf(http.StatusBadRequest, "window depth %q: not a number", v)
		}
		o.Depth = n
	}
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return o, errf(http.StatusBadRequest, "window top %q: not a number", v)
		}
		o.Top = n
	}
	return o, nil
}

// query builds the handler for one read endpoint. Responses are rendered
// through the same expt/export writers grainview uses — byte-identical to
// the CLI for the same artifact — and memoized per (artifact, endpoint,
// params) in memory and on disk, so a hot artifact costs a cache lookup.
func (s *server) query(kind string) func(*obs.Span, http.ResponseWriter, *http.Request) error {
	return func(sp *obs.Span, w http.ResponseWriter, r *http.Request) error {
		id := r.PathValue("id")
		key, err := parseID(id)
		if err != nil {
			return err
		}
		params := ""
		switch kind {
		case "window":
			// Canonical param string: part of the render address, so the
			// same window always hits the same memo entry.
			q := r.URL.Query()
			params = fmt.Sprintf("root=%s,depth=%s,top=%s,format=%s",
				q.Get("root"), q.Get("depth"), q.Get("top"), q.Get("format"))
		case "query":
			// Parse up front: a malformed query fails 400 here, before
			// cache admission or analysis, and never enters the memo.
			params = "q=" + r.URL.Query().Get("q")
			if _, err := query.Parse(r.URL.Query().Get("q")); err != nil {
				return err
			}
		}

		rkey := runpool.KeyOf(id, kind, params)
		body, err, _ := s.renders.Do(rkey, func() ([]byte, error) {
			memoPath := s.memoPath(id, kind, params)
			if b, err := os.ReadFile(memoPath); err == nil {
				sp.Child("render:diskmemo").End()
				return b, nil
			}
			asp := sp.Child("admit")
			release := s.gate.acquire(tenantOf(r))
			asp.End()
			defer release()
			a, err := s.analysisOf(key, sp)
			if err != nil {
				return nil, err
			}
			rsp := sp.Child("render:" + kind)
			b, err := s.render(a, kind, r, sp)
			rsp.End()
			if err != nil {
				return nil, err
			}
			if werr := atomicWrite(memoPath, b); werr != nil {
				return nil, fmt.Errorf("writing render memo: %w", werr)
			}
			return b, nil
		})
		if err != nil {
			// Render failures are not content-addressed facts (the artifact
			// may simply not be uploaded yet) — never serve them from cache.
			s.renders.Forget(rkey)
			return err
		}
		w.Header().Set("Content-Type", contentTypeOf(kind, r))
		_, werr := w.Write(body)
		return werr
	}
}

// memoPath names the on-disk render memo for one (artifact, endpoint,
// params) triple.
func (s *server) memoPath(id, kind, params string) string {
	name := id + "." + kind
	if params != "" {
		name += "-" + runpool.KeyOf(params).Hex()[:16]
	}
	return filepath.Join(s.cfg.Dir, "memo", name)
}

func contentTypeOf(kind string, r *http.Request) string {
	if kind == "window" {
		switch r.URL.Query().Get("format") {
		case "json":
			return "application/json"
		case "graphml":
			return "application/xml"
		}
		return "text/vnd.graphviz; charset=utf-8"
	}
	return "text/plain; charset=utf-8"
}

// render produces the response body for one endpoint, through exactly the
// code paths grainview's flags drive.
func (s *server) render(a *analysis, kind string, r *http.Request, sp *obs.Span) ([]byte, error) {
	var buf bytes.Buffer
	switch kind {
	case "summary":
		if err := expt.WriteSummary(&buf, a.res); err != nil {
			return nil, err
		}
	case "highlight":
		if err := expt.WriteHighlight(&buf, a.res); err != nil {
			return nil, err
		}
	case "whatif":
		wsp := sp.Child("whatif")
		ps, err := a.rankOf(s.pool, wsp)
		wsp.End()
		if err != nil {
			return nil, err
		}
		if err := expt.WriteWhatIfTable(&buf, a.res, ps); err != nil {
			return nil, err
		}
	case "query":
		plan, err := query.Parse(r.URL.Query().Get("q"))
		if err != nil {
			return nil, err
		}
		// Both sources read shared per-analysis state (adopted from the
		// artifact's sidecars when present, built once otherwise).
		var t *query.Table
		if plan.Source() == "tasks" {
			isp := sp.Child("lod:index")
			t = a.lod().Table()
			isp.End()
		} else {
			tsp := sp.Child("query:table")
			t = a.res.GrainTable(s.pool)
			tsp.End()
		}
		qsp := sp.Child("query:run")
		out, err := plan.Run(t, s.pool)
		qsp.End()
		if err != nil {
			return nil, err
		}
		if err := query.WriteTable(&buf, out); err != nil {
			return nil, err
		}
	case "window":
		opt, err := windowParams(r)
		if err != nil {
			return nil, err
		}
		isp := sp.Child("lod:index")
		ix := a.lod()
		isp.End()
		qsp := sp.Child("lod:window")
		wg, _, err := ix.Window(opt)
		qsp.End()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		core.Layout(wg)
		esp := sp.Child("export")
		defer esp.End()
		switch format := r.URL.Query().Get("format"); format {
		case "", "dot":
			err = export.DOTWithWhatIfPool(&buf, wg, a.res.Assessment, export.ViewStructure, nil, s.pool)
		case "json":
			err = export.JSONWithWhatIfPool(&buf, wg, a.res.Assessment, nil, s.pool)
		case "graphml":
			err = export.GraphML(&buf, wg, a.res.Assessment, export.ViewStructure)
		default:
			err = errf(http.StatusBadRequest, "unknown window format %q (want dot, json or graphml)", format)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, errf(http.StatusNotFound, "unknown endpoint %q", kind)
	}
	return buf.Bytes(), nil
}

// handleStatsz reports the server's own health: request counts, cache tier
// hit/miss/eviction counters, aggregated request phases, and admission
// queue pressure — the analyzer's self-observability turned on itself.
func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	waits, waited := s.gate.queueStats()
	out := map[string]any{
		"uptime_ms": time.Since(s.start).Milliseconds(),
		"requests":  s.requests.snapshot(),
		"caches": map[string]runpool.CacheStats{
			"decode":   s.decodes.Counters(),
			"analysis": s.analyses.Counters(),
			"render":   s.renders.Counters(),
		},
		"cache_entries": map[string]int{
			"decode":   s.decodes.Len(),
			"analysis": s.analyses.Len(),
			"render":   s.renders.Len(),
		},
		"admission": map[string]any{
			"waits":   waits,
			"wait_ms": waited.Milliseconds(),
		},
		"phases": s.phases.snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(out)
}

// handleEvict (POST /debug/evict, only registered with -debug) drops
// every warm tier: the in-memory decode/analysis/render caches and the
// on-disk render memo. Stored artifacts stay. grainload -cold calls it
// before each measured request so the request exercises the cold path —
// disk read, decode, analysis — instead of a cache lookup.
func (s *server) handleEvict(w http.ResponseWriter, r *http.Request) {
	s.decodes.Reset()
	s.analyses.Reset()
	s.renders.Reset()
	memoDir := filepath.Join(s.cfg.Dir, "memo")
	removed := 0
	if ents, err := os.ReadDir(memoDir); err == nil {
		for _, e := range ents {
			if e.IsDir() {
				continue
			}
			if os.Remove(filepath.Join(memoDir, e.Name())) == nil {
				removed++
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n \"evicted\": true,\n \"memo_files_removed\": %d\n}\n", removed)
}

// phaseStats aggregates span wall time by name across all requests.
type phaseStats struct {
	mu sync.Mutex
	m  map[string]*phaseAgg
}

type phaseAgg struct {
	Count int64 `json:"count"`
	MS    int64 `json:"total_ms"`
	ns    int64
}

func newPhaseStats() *phaseStats { return &phaseStats{m: make(map[string]*phaseAgg)} }

func (p *phaseStats) record(spans []obs.SpanRecord) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, sp := range spans {
		agg := p.m[sp.Name]
		if agg == nil {
			agg = &phaseAgg{}
			p.m[sp.Name] = agg
		}
		agg.Count++
		agg.ns += int64(sp.Dur)
	}
}

// snapshot returns the aggregates sorted by total time, descending.
func (p *phaseStats) snapshot() []map[string]any {
	p.mu.Lock()
	defer p.mu.Unlock()
	type row struct {
		name string
		agg  phaseAgg
	}
	rows := make([]row, 0, len(p.m))
	for name, agg := range p.m {
		rows = append(rows, row{name, *agg})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].agg.ns != rows[j].agg.ns {
			return rows[i].agg.ns > rows[j].agg.ns
		}
		return rows[i].name < rows[j].name
	})
	out := make([]map[string]any, len(rows))
	for i, r := range rows {
		out[i] = map[string]any{
			"phase":    r.name,
			"count":    r.agg.Count,
			"total_ms": time.Duration(r.agg.ns).Milliseconds(),
		}
	}
	return out
}

// requestStats counts requests and failures per route.
type requestStats struct {
	mu sync.Mutex
	m  map[string]*reqAgg
}

type reqAgg struct {
	Total  int64 `json:"total"`
	Errors int64 `json:"errors"`
}

func newRequestStats() *requestStats { return &requestStats{m: make(map[string]*reqAgg)} }

func (rs *requestStats) record(route string, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	agg := rs.m[route]
	if agg == nil {
		agg = &reqAgg{}
		rs.m[route] = agg
	}
	agg.Total++
	if !ok {
		agg.Errors++
	}
}

func (rs *requestStats) snapshot() map[string]reqAgg {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]reqAgg, len(rs.m))
	for k, v := range rs.m {
		out[k] = *v
	}
	return out
}
