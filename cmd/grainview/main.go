// Command grainview profiles a workload on the simulated machine, builds
// its grain graph, derives the paper's metrics, and exports the graph for
// viewing (GraphML for yEd/Cytoscape, DOT for Graphviz, JSON for tooling)
// together with a problem summary.
//
// Given a positional grain-profile artifact (a .ggp file recorded with
// grainbench -record or an rts Profile sink), grainview analyzes the saved
// trace instead of simulating: the graph, metrics, what-if projections and
// exports are byte-identical to the live run that recorded it. A second
// positional artifact supplies the 1-core baseline for work deviation.
//
// Examples:
//
//	grainview -list
//	grainview -workload kdtree -variant before -o kdtree.graphml
//	grainview -workload sort -view parallelism -reduce -format dot -o sort.dot
//	grainview -workload fft -variant after -cores 16 -summary
//	grainview -workload fib -whatif rank
//	grainview -workload fib -whatif cutoff:4,infcores -format json -o fib.json
//	grainview -summary run.ggp            # analyze a saved artifact
//	grainview -whatif rank run.ggp base.ggp
//	grainview -workload fib -record fib.ggp -summary
//	                                      # save the simulated run as an artifact
//	grainview -phases run.ggp             # where did the analyzer's time go?
//	grainview -selfprofile self.json run.ggp
//	                                      # Perfetto trace of the analysis itself
//	grainview -window root=R,depth=2,top=6 -format dot -o run.dot run.ggp
//	                                      # level-of-detail window over a huge run
//	grainview -query "filter benefit < 1 | sort exec desc | topk 10 | select id,loc,exec" run.ggp
//	                                      # vectorized query over the grain metrics
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/expt"
	"graingraph/internal/ggp"
	"graingraph/internal/lod"
	"graingraph/internal/machine"
	"graingraph/internal/obs"
	"graingraph/internal/profile"
	"graingraph/internal/query"
	"graingraph/internal/rts"
	"graingraph/internal/timeline"
	"graingraph/internal/whatif"
	"graingraph/internal/workloads"
)

// Usage strings for the three expression-valued flags; dieUsage prints the
// matching one when the expression fails to parse.
const (
	queryUsage  = `-query "[from grains|tasks |] filter <expr> | groupby <cols> | agg <calls> | sort <col> [asc|desc] | topk <n> [by <col> [asc|desc]] | select <cols>"`
	windowUsage = `-window "root=<task>,depth=<n>,top=<n>" (keys optional, order-free)`
	whatifUsage = `-whatif rank | -whatif "cutoff:<depth>,scale:<grain>:<factor>,infcores,noinflate[:<grain>]"`
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available workloads")
		workload = flag.String("workload", "fib", "workload to profile")
		variant  = flag.String("variant", "", "workload variant: before|after (default: the troubled original)")
		cores    = flag.Int("cores", 48, "simulated cores")
		flavor   = flag.String("flavor", "MIR", "runtime flavour: MIR|GCC|ICC")
		schedArg = flag.String("sched", "ws", "scheduler: ws (work-stealing) | cq (central queue)")
		policy   = flag.String("policy", "first-touch", "page placement: first-touch|round-robin|node0")
		format   = flag.String("format", "graphml", "export format: graphml|dot|json")
		view     = flag.String("view", "structure", "colour view: structure|benefit|inflation|parallelism|scatter|utilization|critical")
		reduce   = flag.Bool("reduce", false, "apply the paper's node-grouping reductions before export")
		baseline = flag.Bool("baseline", true, "also run a 1-core baseline for work deviation")
		summary  = flag.Bool("summary", false, "print the problem summary and timeline instead of exporting")
		highTab  = flag.Bool("highlight", false, "print the highlight table (per-problem counts, worst offenders, hot definitions) instead of exporting")
		out      = flag.String("o", "", "output file (default stdout)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		whatIf   = flag.String("whatif", "", "what-if analysis: \"rank\" for the auto-ranked opportunity table, or a spec list like \"cutoff:4,scale:R.0:0.5,infcores\" (see internal/whatif); projections are printed and attached to DOT/JSON exports")
		traceOut = flag.String("trace", "", "write a Perfetto/Chrome trace of the run to this file")
		stats    = flag.Bool("stats", false, "print the runtime scheduler/cache metrics registry")
		jobs     = flag.Int("j", 1, "worker parallelism for analysis and export (1 = serial, 0 = all cores); output is byte-identical at every -j")
		phases   = flag.Bool("phases", false, "print the analyzer's own phase table (where grainview spent its time) after the run")
		selfProf = flag.String("selfprofile", "", "write a Chrome-trace profile of the analysis run itself to this file (open at ui.perfetto.dev)")
		recOut   = flag.String("record", "", "write the run's trace as a grain-profile artifact (.ggp) to this file for later replay")
		window   = flag.String("window", "", "level-of-detail export window, e.g. \"root=R.3,depth=2,top=8\": expand the root task's subtree depth levels with the top heaviest children per task, collapse the rest into super-nodes (critical path stays exact); keys are optional and order-free")
		fullExp  = flag.Bool("full-export", false, "export every node even on huge graphs (default: graphs over 500k nodes require -window or -full-export)")
		queryStr = flag.String("query", "", "run a query plan over the analyzed run and print the result table, e.g. \"filter benefit < 1 | sort exec desc | topk 10 | select id,loc,exec\" (see internal/query for the grammar; \"from tasks\" queries the level-of-detail summary index)")
	)
	flag.Parse()

	// Expression flags parse before any simulation work so a malformed
	// query fails fast with a usage message (exit 2), not after minutes of
	// simulated execution.
	var queryPlan *query.Plan
	if *queryStr != "" {
		var err error
		queryPlan, err = query.Parse(*queryStr)
		dieUsage(err, queryUsage)
	}

	expt.SetParallelism(*jobs)

	// Self-observability: one root span covers the whole invocation, with
	// children for ingest, analysis, what-if, layout and export, so the
	// phase table attributes (nearly) all of grainview's wall time.
	// EnableSelfProfile must follow SetParallelism so the pool telemetry
	// attaches to the live pool.
	var rootSp *obs.Span
	if *phases || *selfProf != "" {
		expt.EnableSelfProfile(obs.New())
		rootSp = expt.SelfProfiler().Begin("grainview")
	}
	finishProfile := func() {
		if rootSp == nil {
			return
		}
		rootSp.End()
		rootSp = nil
		prof, err := expt.SelfProfile()
		die(err)
		if *phases {
			// The phase table follows the whatif-table convention: stderr
			// when an export is streaming to stdout, stdout otherwise.
			tableW := os.Stdout
			if !*summary && *out == "" {
				tableW = os.Stderr
			}
			die(obs.WriteTable(tableW, prof))
		}
		if *selfProf != "" {
			f, err := os.Create(*selfProf)
			die(err)
			die(export.SelfProfile(f, prof))
			die(f.Close())
			fmt.Fprintf(os.Stderr, "grainview: wrote %s (%d spans) — open at https://ui.perfetto.dev\n",
				*selfProf, len(prof.Spans))
		}
	}

	if *traceOut != "" || *stats {
		expt.Instr = &expt.Instrumentation{CaptureEvents: *traceOut != ""}
	}

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "workload\tvariants\tdescription")
		for _, s := range workloads.Describe() {
			fmt.Fprintf(tw, "%s\t%v\t%s\n", s.Name, s.Variants, s.Description)
		}
		tw.Flush()
		return
	}

	// Two input modes: a positional .ggp artifact analyzes a saved trace
	// (no simulation, byte-identical analysis); otherwise the named
	// workload is simulated live.
	var res *expt.Result
	if flag.NArg() > 0 {
		if *traceOut != "" || *stats {
			die(fmt.Errorf("-trace/-stats need a live simulation; they are unavailable when analyzing a saved artifact"))
		}
		if flag.NArg() > 2 {
			die(fmt.Errorf("expected <run.ggp> [baseline.ggp], got %d arguments", flag.NArg()))
		}
		isp := rootSp.Child("ingest:ggp")
		dec, err := ggp.DecodeFile(flag.Arg(0), expt.Pool(), isp)
		die(err)
		var base *profile.Trace
		if flag.NArg() == 2 {
			base, err = ggp.DecodeTraceFile(flag.Arg(1), expt.Pool(), isp)
			die(err)
		}
		isp.End()
		res = expt.AnalyzeDecodedSpan(dec, base, expt.Config{}, rootSp)
	} else {
		inst, err := workloads.Get(*workload, workloads.Variant(*variant))
		die(err)

		cfg := expt.Config{Cores: *cores, Seed: *seed, Baseline: *baseline}
		switch *flavor {
		case "MIR":
			cfg.Flavor = rts.FlavorMIR
		case "GCC":
			cfg.Flavor = rts.FlavorGCC
		case "ICC":
			cfg.Flavor = rts.FlavorICC
		default:
			die(fmt.Errorf("unknown flavor %q", *flavor))
		}
		switch *schedArg {
		case "ws":
			cfg.Scheduler = rts.WorkStealing
		case "cq":
			cfg.Scheduler = rts.CentralQueueSched
		default:
			die(fmt.Errorf("unknown scheduler %q", *schedArg))
		}
		switch *policy {
		case "first-touch":
			cfg.Policy = machine.FirstTouch
		case "round-robin":
			cfg.Policy = machine.RoundRobin
		case "node0":
			cfg.Policy = machine.Node0
		default:
			die(fmt.Errorf("unknown policy %q", *policy))
		}

		// The run child covers simulation wall time too: the simulate spans
		// themselves are separate root trees (they may execute on any pool
		// goroutine under the memo's single-flight), but this wrapper keeps
		// the grainview tree's attribution complete.
		rsp := rootSp.Child("run")
		res, err = expt.RunSpan(inst, cfg, rsp)
		rsp.End()
		die(err)
	}

	if *recOut != "" {
		rsp := rootSp.Child("record:ggp")
		die(ggp.WriteFile(*recOut, res.Trace))
		rsp.End()
		fmt.Fprintf(os.Stderr, "grainview: recorded %s (%d grains, %d cores)\n",
			*recOut, res.Trace.NumGrains(), res.Trace.Cores)
	}

	// What-if analysis: replay the recorded graph under hypothetical
	// transformations and print the projections. The table goes to stderr
	// when the export itself streams to stdout, keeping pipes clean.
	var projections []whatif.Projection
	if *whatIf != "" {
		wsp := rootSp.Child("whatif")
		if *whatIf == "rank" {
			var err error
			projections, err = expt.WhatIfRank(res, expt.Pool(), wsp)
			die(err)
		} else {
			nsp := wsp.Child("whatif:new")
			eng := whatif.New(res.Graph, res.Report)
			nsp.End()
			eng.Obs = wsp
			hs, err := whatif.ParseSpecs(*whatIf)
			dieUsage(err, whatifUsage)
			projections = eng.EvalAll(expt.Pool(), hs)
		}
		wsp.End()
		tableW := os.Stdout
		if !*summary && !*highTab && *out == "" {
			tableW = os.Stderr
		}
		die(expt.WriteWhatIfTable(tableW, res, projections))
	}

	if *traceOut != "" {
		die(writeTrace(*traceOut))
	}
	if *stats {
		printStats(res)
	}
	if *summary {
		ssp := rootSp.Child("summary")
		die(expt.WriteSummary(os.Stdout, res))
		ssp.End()
		finishProfile()
		return
	}
	if *highTab {
		hsp := rootSp.Child("highlight:table")
		die(expt.WriteHighlight(os.Stdout, res))
		hsp.End()
		finishProfile()
		return
	}
	if queryPlan != nil {
		qsp := rootSp.Child("query")
		err := expt.WritePlanSpan(os.Stdout, res, queryPlan, expt.Pool(), qsp)
		qsp.End()
		var qe *query.Error
		if errors.As(err, &qe) {
			// Binding failures (unknown column, type mismatch) surface at
			// run time but are still the query's fault: usage exit.
			dieUsage(err, queryUsage)
		}
		die(err)
		finishProfile()
		return
	}

	g := res.Graph
	if *window != "" {
		wopt, err := lod.ParseWindow(*window)
		dieUsage(err, windowUsage)
		isp := rootSp.Child("lod:index")
		ix := res.Lod()
		isp.End()
		qsp := rootSp.Child("lod:window")
		wg, wstats, err := ix.Window(wopt)
		qsp.End()
		dieUsage(err, windowUsage)
		g = wg
		fmt.Fprintf(os.Stderr, "grainview: window %s: %d tasks expanded, %d super-nodes — %d nodes, %d edges (of %d source nodes)\n",
			*window, wstats.Expanded, wstats.SuperNodes, wstats.Nodes, wstats.Edges, wstats.SourceSize)
	} else if err := export.SizeGate(g, *fullExp); err != nil {
		// The gate itself lives in the export layer (every exporter enforces
		// it); checking here too fails fast, before layout touches millions
		// of nodes.
		die(fmt.Errorf("%w — pass -window (e.g. -window depth=2,top=8) for a level-of-detail view, or -full-export to force the old behavior", err))
	}

	lsp := rootSp.Child("layout")
	if *reduce {
		g = core.ReduceAll(g)
	}
	core.Layout(g)
	lsp.End()

	var v export.View
	switch *view {
	case "structure":
		v = export.ViewStructure
	case "benefit":
		v = export.ViewParallelBenefit
	case "inflation":
		v = export.ViewWorkInflation
	case "parallelism":
		v = export.ViewParallelism
	case "scatter":
		v = export.ViewScatter
	case "utilization":
		v = export.ViewUtilization
	case "critical":
		v = export.ViewCritical
	default:
		die(fmt.Errorf("unknown view %q", *view))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		die(err)
		defer f.Close()
		w = f
	}
	esp := rootSp.Child("export:" + *format)
	switch *format {
	case "graphml":
		if *fullExp {
			die(export.FullGraphML(w, g, res.Assessment, v))
		} else {
			die(export.GraphML(w, g, res.Assessment, v))
		}
	case "dot":
		if *fullExp {
			die(export.FullDOT(w, g, res.Assessment, v, projections, expt.Pool()))
		} else {
			die(export.DOTWithWhatIfPool(w, g, res.Assessment, v, projections, expt.Pool()))
		}
	case "json":
		if *fullExp {
			die(export.FullJSON(w, g, res.Assessment, projections, expt.Pool()))
		} else {
			die(export.JSONWithWhatIfPool(w, g, res.Assessment, projections, expt.Pool()))
		}
	default:
		die(fmt.Errorf("unknown format %q", *format))
	}
	esp.End()
	if *out != "" {
		fmt.Fprintf(os.Stderr, "grainview: wrote %s (%d nodes, %d edges, %s view)\n",
			*out, g.NumNodes(), g.NumEdges(), v)
	}
	finishProfile()
}

// writeTrace exports the instrumented runs (baseline + parallel) as one
// Perfetto trace file.
func writeTrace(path string) error {
	runs := make([]export.PerfettoRun, 0, len(expt.Instr.Runs))
	for _, r := range expt.Instr.Runs {
		runs = append(runs, export.PerfettoRun{
			Label: r.Label, Trace: r.Trace, Events: r.Events,
			Dropped: r.Dropped, Critical: r.Critical,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.Perfetto(f, runs); err != nil {
		return fmt.Errorf("writing trace %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "grainview: wrote %s (%d runs) — open at https://ui.perfetto.dev\n",
		path, len(runs))
	return nil
}

// printStats renders each instrumented run's metrics registry and
// cross-checks it against the trace-reconstructed timeline.
func printStats(res *expt.Result) {
	for _, r := range expt.Instr.Runs {
		fmt.Printf("runtime stats — %s\n", r.Label)
		die(r.Metrics.Render(os.Stdout))
		if r.Trace == res.Trace {
			die(timeline.FromTrace(r.Trace).CrossCheck(r.Metrics))
		}
		fmt.Println()
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "grainview: %v\n", err)
		os.Exit(1)
	}
}

// dieUsage is the shared fail helper for the expression-valued flags
// (-query, -window, -whatif): a malformed expression is the invocation's
// fault, so it reports the error with the flag's usage line and exits 2 —
// the usage-error convention — rather than the generic failure exit 1 (or,
// worse, a panic) the parse sites used to produce inconsistently.
func dieUsage(err error, usage string) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "grainview: %v\nusage: grainview %s\n", err, usage)
		os.Exit(2)
	}
}
