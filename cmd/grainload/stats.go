package main

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// percentile returns the nearest-rank p-th percentile (0 < p <= 100) of
// sorted, which must be ascending. An empty slice yields 0.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100 + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// summary is one endpoint's aggregated load-test outcome.
type summary struct {
	Endpoint string
	Count    int
	Errors   int
	P50      time.Duration
	P90      time.Duration
	P99      time.Duration
	Max      time.Duration
}

// summarize computes the latency summary for one endpoint's samples.
func summarize(endpoint string, samples []time.Duration, errors int) summary {
	s := summary{Endpoint: endpoint, Count: len(samples), Errors: errors}
	if len(samples) == 0 {
		return s
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.P50 = percentile(sorted, 50)
	s.P90 = percentile(sorted, 90)
	s.P99 = percentile(sorted, 99)
	s.Max = sorted[len(sorted)-1]
	return s
}

// writeSummaries renders per-endpoint rows plus a total row.
func writeSummaries(w io.Writer, elapsed time.Duration, sums []summary) {
	total, errors := 0, 0
	fmt.Fprintf(w, "%-12s %8s %7s %10s %10s %10s %10s\n",
		"endpoint", "requests", "errors", "p50", "p90", "p99", "max")
	for _, s := range sums {
		total += s.Count
		errors += s.Errors
		fmt.Fprintf(w, "%-12s %8d %7d %10s %10s %10s %10s\n",
			s.Endpoint, s.Count, s.Errors,
			round(s.P50), round(s.P90), round(s.P99), round(s.Max))
	}
	rate := float64(total) / elapsed.Seconds()
	fmt.Fprintf(w, "total: %d requests, %d errors in %s (%.1f req/s achieved)\n",
		total, errors, round(elapsed), rate)
}

// round trims durations to a readable precision.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(time.Microsecond)
}
