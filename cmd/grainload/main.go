// Command grainload drives a grainserved instance at a constant request
// rate and reports latency percentiles — the measurement harness behind the
// serving numbers in EXPERIMENTS.md.
//
//	grainload -server http://localhost:8080 -artifact run.ggp \
//	          -rate 200 -duration 10s -c 8 -tenants 4
//
// The driver first uploads the artifact (its content address becomes the
// target id), optionally issues one warmup query per endpoint so steady-state
// numbers measure the cache rather than the first analysis, then runs a
// closed loop: a constant-rate ticker releases requests round-robin across
// the endpoints, but never more than -c in flight — if the server falls
// behind, the loop applies backpressure instead of piling up requests.
// Requests carry X-Tenant headers spread across -tenants synthetic tenants.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

type result struct {
	endpoint string
	dur      time.Duration
	err      bool
}

func main() {
	var (
		server   = flag.String("server", "http://127.0.0.1:8080", "grainserved base URL")
		artifact = flag.String("artifact", "", ".ggp artifact to upload and query (required)")
		rate     = flag.Float64("rate", 100, "target request rate per second")
		duration = flag.Duration("duration", 10*time.Second, "measurement duration")
		workers  = flag.Int("c", 8, "max in-flight requests (closed-loop bound)")
		tenants  = flag.Int("tenants", 4, "synthetic tenant count for X-Tenant")
		warmup   = flag.Bool("warmup", true, "query each endpoint once before measuring")
		seed     = flag.Int64("seed", 1, "endpoint-shuffle seed")
		eps      = flag.String("endpoints", "summary,highlight,whatif,window", "comma-separated endpoints to drive")
		cold     = flag.Bool("cold", false, "measure the cold path: serialize requests and POST /debug/evict before each one (server must run with -debug); warmup still runs first, so the artifact is upgraded in place before measuring")
	)
	flag.Parse()
	if *artifact == "" {
		fmt.Fprintln(os.Stderr, "grainload: -artifact is required")
		flag.Usage()
		os.Exit(2)
	}

	body, err := os.ReadFile(*artifact)
	if err != nil {
		fatal(err)
	}
	id, err := uploadArtifact(*server, body)
	if err != nil {
		fatal(fmt.Errorf("upload: %w", err))
	}
	fmt.Fprintf(os.Stderr, "grainload: artifact %s (%d bytes)\n", id, len(body))

	endpoints := strings.Split(*eps, ",")
	paths := make([]string, len(endpoints))
	for i, ep := range endpoints {
		ep = strings.TrimSpace(ep)
		endpoints[i] = ep
		paths[i] = fmt.Sprintf("%s/artifacts/%s/%s", *server, id, ep)
		if ep == "window" {
			paths[i] += "?depth=2&top=8&format=dot"
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	if *warmup {
		for i, p := range paths {
			if _, err := get(client, p, "warmup"); err != nil {
				fatal(fmt.Errorf("warmup %s: %w", endpoints[i], err))
			}
		}
	}

	if *cold {
		runCold(client, *server, endpoints, paths, *duration, *seed, max(1, *tenants))
		return
	}

	// Closed loop: the ticker paces departures, the semaphore bounds
	// concurrency, and results stream into the collector.
	var (
		sem     = make(chan struct{}, max(1, *workers))
		results = make(chan result, 1024)
		wg      sync.WaitGroup
		rng     = rand.New(rand.NewSource(*seed))
	)
	done := make(chan struct{})
	samples := make(map[string][]time.Duration, len(endpoints))
	errorsBy := make(map[string]int, len(endpoints))
	go func() {
		defer close(done)
		for r := range results {
			if r.err {
				errorsBy[r.endpoint]++
				continue
			}
			samples[r.endpoint] = append(samples[r.endpoint], r.dur)
		}
	}()

	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	ticker := time.NewTicker(interval)
	for time.Since(start) < *duration {
		<-ticker.C
		sem <- struct{}{} // backpressure: wait for a free slot
		i := rng.Intn(len(paths))
		tenant := fmt.Sprintf("tenant-%d", rng.Intn(max(1, *tenants)))
		wg.Add(1)
		go func(endpoint, url, tenant string) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			_, err := get(client, url, tenant)
			results <- result{endpoint: endpoint, dur: time.Since(t0), err: err != nil}
		}(endpoints[i], paths[i], tenant)
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	<-done

	sums := make([]summary, 0, len(endpoints))
	for _, ep := range endpoints {
		sums = append(sums, summarize(ep, samples[ep], errorsBy[ep]))
	}
	writeSummaries(os.Stdout, elapsed, sums)

	if stats, err := get(client, *server+"/statsz", "grainload"); err == nil {
		fmt.Printf("\nserver /statsz:\n%s", stats)
	}
}

// runCold is the -cold loop: strictly serial, with every warm tier
// evicted (POST /debug/evict) before each measured request, so each
// sample is a full disk-read + decode + analysis + render. The eviction
// round trip itself is not measured. Run after warmup, the stored
// artifact has been upgraded to columnar v2 with sidecars, so cold
// samples measure the sidecar-assisted ingest path.
func runCold(client *http.Client, server string, endpoints, paths []string, duration time.Duration, seed int64, tenants int) {
	rng := rand.New(rand.NewSource(seed))
	samples := make(map[string][]time.Duration, len(endpoints))
	errorsBy := make(map[string]int, len(endpoints))
	start := time.Now()
	for time.Since(start) < duration {
		resp, err := client.Post(server+"/debug/evict", "application/json", nil)
		if err != nil {
			fatal(fmt.Errorf("evict: %w", err))
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("evict: status %d (is the server running with -debug?)", resp.StatusCode))
		}
		i := rng.Intn(len(paths))
		tenant := fmt.Sprintf("tenant-%d", rng.Intn(tenants))
		t0 := time.Now()
		if _, err := get(client, paths[i], tenant); err != nil {
			errorsBy[endpoints[i]]++
			continue
		}
		samples[endpoints[i]] = append(samples[endpoints[i]], time.Since(t0))
	}
	elapsed := time.Since(start)
	sums := make([]summary, 0, len(endpoints))
	for _, ep := range endpoints {
		sums = append(sums, summarize(ep, samples[ep], errorsBy[ep]))
	}
	writeSummaries(os.Stdout, elapsed, sums)
	if stats, err := get(client, server+"/statsz", "grainload"); err == nil {
		fmt.Printf("\nserver /statsz:\n%s", stats)
	}
}

// uploadArtifact posts the artifact and returns its content address.
func uploadArtifact(server string, body []byte) (string, error) {
	resp, err := http.Post(server+"/artifacts", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	// Minimal decode: the id field of the JSON response.
	var fields struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &fields); err != nil || fields.ID == "" {
		return "", fmt.Errorf("bad upload response: %s", b)
	}
	return fields.ID, nil
}

func get(client *http.Client, url, tenant string) ([]byte, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return b, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "grainload: %v\n", err)
	os.Exit(1)
}
