package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, ms(5)},  // ceil(0.50*10) = 5th
		{90, ms(9)},  // ceil(0.90*10) = 9th
		{99, ms(10)}, // ceil(0.99*10) = 10th
		{100, ms(10)},
		{10, ms(1)},
		{1, ms(1)},
	}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%.0f) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []time.Duration{ms(7)}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := percentile(one, p); got != ms(7) {
			t.Errorf("percentile(single, %.0f) = %v, want 7ms", p, got)
		}
	}
}

func TestSummarizeSortsAndCounts(t *testing.T) {
	// Deliberately unsorted input: summarize must not depend on order.
	samples := []time.Duration{ms(9), ms(1), ms(5), ms(3), ms(7), ms(2), ms(8), ms(4), ms(6), ms(10)}
	s := summarize("summary", samples, 2)
	if s.Count != 10 || s.Errors != 2 {
		t.Errorf("count/errors = %d/%d, want 10/2", s.Count, s.Errors)
	}
	if s.P50 != ms(5) || s.P90 != ms(9) || s.P99 != ms(10) || s.Max != ms(10) {
		t.Errorf("p50/p90/p99/max = %v/%v/%v/%v, want 5ms/9ms/10ms/10ms", s.P50, s.P90, s.P99, s.Max)
	}
	// summarize must not mutate the caller's slice.
	if samples[0] != ms(9) {
		t.Error("summarize sorted the caller's sample slice in place")
	}

	empty := summarize("whatif", nil, 1)
	if empty.Count != 0 || empty.Errors != 1 || empty.P99 != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestWriteSummaries(t *testing.T) {
	var buf bytes.Buffer
	sums := []summary{
		summarize("summary", []time.Duration{ms(2), ms(4)}, 0),
		summarize("whatif", []time.Duration{ms(3)}, 1),
	}
	writeSummaries(&buf, 2*time.Second, sums)
	out := buf.String()
	for _, want := range []string{"endpoint", "summary", "whatif", "total: 3 requests, 1 errors", "1.5 req/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
