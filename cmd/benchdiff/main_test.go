package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"graingraph/internal/benchfmt"
)

// loadBaseline reads the committed BENCH_<date>.json trajectory point at
// the repo root — the file CI diffs smoke runs against.
func loadBaseline(t *testing.T) (path string, r *benchfmt.Report) {
	t.Helper()
	matches, err := filepath.Glob("../../BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no committed BENCH_*.json baseline at the repo root (err=%v)", err)
	}
	path = matches[len(matches)-1] // glob sorts; latest date wins
	r, err = benchfmt.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, r
}

// TestBaselineSelfDiff pins that the committed baseline diffed against
// itself is clean and exits 0.
func TestBaselineSelfDiff(t *testing.T) {
	path, _ := loadBaseline(t)
	var out, errb bytes.Buffer
	if code := run([]string{path, path}, &out, &errb); code != 0 {
		t.Fatalf("self-diff exit %d, output:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("self-diff output missing pass line: %s", out.String())
	}
}

// TestInjectedSlowdownFails pins the acceptance criterion: slow every
// figure and phase of the committed baseline by 2x and benchdiff must
// exit non-zero — and with -warn, report but exit 0.
func TestInjectedSlowdownFails(t *testing.T) {
	path, base := loadBaseline(t)
	slow := *base
	slow.Figures = append([]benchfmt.Figure(nil), base.Figures...)
	slow.Phases = append([]benchfmt.Phase(nil), base.Phases...)
	slow.WallMS *= 2
	slow.AnalyzeMS *= 2
	for i := range slow.Figures {
		slow.Figures[i].WallMS *= 2
		slow.Figures[i].AnalyzeMS *= 2
	}
	for i := range slow.Phases {
		slow.Phases[i].WallMS *= 2
	}
	slowPath := filepath.Join(t.TempDir(), "BENCH_slow.json")
	if err := benchfmt.Write(slowPath, &slow); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if code := run([]string{path, slowPath}, &out, &errb); code != 1 {
		t.Fatalf("injected 2x slowdown: exit %d, want 1; output:\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "regressed") {
		t.Errorf("output does not name regressions: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"-warn", path, slowPath}, &out, &errb); code != 0 {
		t.Fatalf("-warn: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "not failing") {
		t.Errorf("-warn output missing notice: %s", out.String())
	}
}

// TestUsageErrors pins exit code 2 for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"nope.json", "nope2.json"}, &out, &errb); code != 2 {
		t.Errorf("missing files: exit %d, want 2", code)
	}
	if code := run([]string{"-threshold", "x", "a", "b"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
