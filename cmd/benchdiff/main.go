// Command benchdiff compares two grainbench -benchjson reports and fails
// when the new one regressed.
//
// Usage:
//
//	benchdiff [-threshold 25] [-min-ms 50] [-warn] BASELINE.json NEW.json
//
// Figures are matched by ID, phases by span name; entries present in only
// one report are ignored, so a CI smoke run covering a single figure can
// be diffed against the full committed baseline (BENCH_<date>.json at the
// repo root). Totals are compared only when both reports cover the same
// figure set at the same parallelism.
//
// Exit status: 0 when no metric regressed beyond the threshold, 1 when at
// least one did (0 with -warn, which prints regressions without failing —
// for CI lanes where the hardware is too noisy to gate on), 2 on usage or
// unreadable input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"graingraph/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 25, "flag metrics that grew more than this percent over the baseline")
	minMS := fs.Float64("min-ms", 50, "ignore metrics whose baseline wall time is below this floor (ms)")
	warn := fs.Bool("warn", false, "report regressions but exit 0 (noisy-hardware CI lanes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold pct] [-min-ms ms] [-warn] BASELINE.json NEW.json")
		return 2
	}

	baseline, err := benchfmt.Read(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	current, err := benchfmt.Read(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: new: %v\n", err)
		return 2
	}

	if !benchfmt.Comparable(baseline, current) {
		fmt.Fprintf(stdout, "benchdiff: reports are not comparable (baseline -j %d vs new -j %d); wall times at different parallelism measure scheduling, not performance — nothing diffed\n",
			baseline.Parallelism, current.Parallelism)
		return 0
	}
	regs := benchfmt.Diff(baseline, current, benchfmt.DiffOptions{
		ThresholdPct: *threshold,
		MinMS:        *minMS,
	})
	if len(regs) == 0 {
		fmt.Fprintf(stdout, "benchdiff: no regressions over %.0f%% (baseline %s, %d figures compared)\n",
			*threshold, fs.Arg(0), len(current.Figures))
		return 0
	}
	fmt.Fprintf(stdout, "benchdiff: %d metric(s) regressed more than %.0f%% vs %s:\n",
		len(regs), *threshold, fs.Arg(0))
	for _, r := range regs {
		fmt.Fprintf(stdout, "  %s\n", r)
	}
	if *warn {
		fmt.Fprintln(stdout, "benchdiff: -warn set, not failing")
		return 0
	}
	return 1
}
