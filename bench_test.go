// Root-level benchmark harness: one testing.B benchmark per table and
// figure in the paper's evaluation, each regenerating the corresponding
// result on the simulated machine and reporting its headline numbers as
// custom metrics. A full regeneration pass is:
//
//	go test -bench=. -benchtime=1x .
//
// Each benchmark asserts nothing; the shape checks live in
// internal/expt's tests. Here the value is the regenerated numbers, which
// EXPERIMENTS.md records against the paper's.
package graingraph_test

import (
	"flag"
	"os"
	"testing"

	"graingraph/internal/expt"
	"graingraph/internal/rts"
)

// jobs bounds how many simulations the experiment engine runs in flight:
//
//	go test -bench=. -benchtime=1x .        # parallel (all CPUs)
//	go test -bench=. -benchtime=1x -j 1 .   # serial fallback, for comparison
//
// Output is byte-identical either way; only wall time changes. Runs shared
// between figures (e.g. Sort's default 48-core run) are memoized, so a
// full pass executes each distinct simulation once.
var jobs = flag.Int("j", 0, "simulation parallelism; 1 = serial, <=0 = all CPUs")

func TestMain(m *testing.M) {
	flag.Parse()
	expt.SetParallelism(*jobs)
	os.Exit(m.Run())
}

// BenchmarkFigure1_Speedups regenerates Figure 1: before/after-optimization
// speedups for the five case-study programs under three runtime flavours.
func BenchmarkFigure1_Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure1(nil, 48)
		if err != nil {
			b.Fatal(err)
		}
		for _, program := range []string{"376.kdtree", "Sort", "359.botsspar", "FFT", "Strassen"} {
			b.ReportMetric(res.Get(program, "before", rts.FlavorMIR), program+"_before_x")
			b.ReportMetric(res.Get(program, "after", rts.FlavorMIR), program+"_after_x")
		}
	}
}

// BenchmarkFigure2_KdtreeCutoff regenerates Figure 2: the task explosion
// from 376.kdtree's missing depth increment on the small input.
func BenchmarkFigure2_KdtreeCutoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure2(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BuggyGrains), "buggy_grains")
		b.ReportMetric(float64(res.FixedGrains), "fixed_grains")
		b.ReportMetric(float64(res.BuggyDepth), "buggy_depth")
	}
}

// BenchmarkFigure4_Timeline regenerates Figure 4: the thread-timeline
// baseline view of Sort (load imbalance with no culprit attribution).
func BenchmarkFigure4_Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure4(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LoadImbalance, "load_imbalance")
		b.ReportMetric(100*res.LowIPAffected, "lowIP_pct")
	}
}

// BenchmarkFigure5_SortParallelism regenerates Figure 5: Sort's
// instantaneous-parallelism problem and the failed lowered-cutoff fix.
func BenchmarkFigure5_SortParallelism(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure5(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TunedGrains), "tuned_grains")
		b.ReportMetric(float64(res.LoweredGrains), "lowered_grains")
		b.ReportMetric(100*res.TunedLowIP, "tuned_lowIP_pct")
		b.ReportMetric(100*res.LoweredLowPB, "lowered_lowPB_pct")
	}
}

// BenchmarkSortPageTable regenerates the §4.3.1 problem table: affected
// grains before/after round-robin page placement.
func BenchmarkSortPageTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.SortPageTable(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.InflationBefore, "inflation_before_pct")
		b.ReportMetric(100*res.InflationAfter, "inflation_after_pct")
		b.ReportMetric(100*res.UtilizationBefore, "poorMHU_before_pct")
		b.ReportMetric(100*res.UtilizationAfter, "poorMHU_after_pct")
	}
}

// BenchmarkFigure6_SparseLU regenerates Figure 6: 359.botsspar's work
// inflation at threshold 1.2 and the loop-interchange fix.
func BenchmarkFigure6_SparseLU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure6(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.InflationBefore, "inflated_before_pct")
		b.ReportMetric(100*res.InflationAfter, "inflated_after_pct")
		b.ReportMetric(float64(res.Grains), "grains")
	}
}

// BenchmarkFigure7_FFTBenefit regenerates Figure 7: FFT parallel benefit by
// definition, before and after cutoffs.
func BenchmarkFigure7_FFTBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure7(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BeforeGrains), "orig_grains")
		b.ReportMetric(100*res.BeforeLowPB, "orig_lowPB_pct")
		b.ReportMetric(float64(res.AfterGrains), "cutoff_grains")
	}
}

// BenchmarkFigure8_FFTUtilization regenerates Figure 8: poor
// memory-hierarchy utilization remains after the FFT cutoff fix.
func BenchmarkFigure8_FFTUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure8(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Grains), "grains")
		b.ReportMetric(100*res.PoorMHU, "poorMHU_pct")
	}
}

// BenchmarkFigure9_10_Table1_Freqmine regenerates Figures 9/10 and Table 1:
// the imbalanced FPGF loop and the bin-packed core minimum.
func BenchmarkFigure9_10_Table1_Freqmine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure9Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Chunks), "fpgf_chunks")
		b.ReportMetric(res.LoadBalance48, "loadbalance_48c")
		b.ReportMetric(float64(res.MinCores), "binpacked_cores")
		b.ReportMetric(res.LoadBalanceMin, "loadbalance_minc")
		for _, row := range res.Table1 {
			b.ReportMetric(row.Speedup, row.Flavor.String()+"_speedup_x")
		}
	}
}

// BenchmarkFigure11_Strassen regenerates Figure 11: the hard-coded cutoff,
// the exposed parallelism after the fix, and scheduler-driven scatter.
func BenchmarkFigure11_Strassen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.Figure11(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.BuggyGrainsSCLow), "buggy_grains")
		b.ReportMetric(float64(res.FixedGrains), "fixed_grains")
		b.ReportMetric(100*res.ScatterWS, "scatter_ws_pct")
		b.ReportMetric(100*res.ScatterCQ, "scatter_cq_pct")
		b.ReportMetric(res.SpeedupWS, "speedup_ws_x")
		b.ReportMetric(res.SpeedupCQ, "speedup_cq_x")
	}
}

// BenchmarkOtherBenchmarks regenerates the §4.3.6 summaries.
func BenchmarkOtherBenchmarks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := expt.OtherBenchmarks(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.Speedup, row.Program+"_speedup_x")
			b.ReportMetric(100*row.LowPB, row.Program+"_lowPB_pct")
		}
	}
}
