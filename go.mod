module graingraph

go 1.22
