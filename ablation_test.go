// Ablation benchmarks: isolate the design choices DESIGN.md calls out and
// measure their effect on the headline results. Run with:
//
//	go test -bench=Ablation -benchtime=1x .
package graingraph_test

import (
	"testing"

	"graingraph/internal/cache"
	"graingraph/internal/expt"
	"graingraph/internal/machine"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
	"graingraph/internal/workloads"
)

// BenchmarkAblationScheduler compares work-stealing against the central
// queue across the task-based workloads (the generalization of Figure 11c/d
// beyond Strassen).
func BenchmarkAblationScheduler(b *testing.B) {
	cases := []struct {
		name string
		mk   func() workloads.Instance
	}{
		{"sort", func() workloads.Instance { return workloads.NewSort(workloads.DefaultSortParams()) }},
		{"fft", func() workloads.Instance { return workloads.NewFFT(workloads.OptimizedFFTParams()) }},
		{"strassen", func() workloads.Instance { return workloads.NewStrassen(workloads.FixedStrassenParams()) }},
		{"nqueens", func() workloads.Instance { return workloads.NewNQueens(workloads.DefaultNQueensParams()) }},
	}
	for _, cs := range cases {
		b.Run(cs.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ws, err := expt.Makespan(cs.mk(), expt.Config{Cores: 48, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				cq, err := expt.Makespan(cs.mk(), expt.Config{Cores: 48, Seed: 1,
					Scheduler: rts.CentralQueueSched})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cq)/float64(ws), "centralqueue_slowdown_x")
			}
		})
	}
}

// BenchmarkAblationPagePolicy sweeps the three placement policies on Sort
// (§4.3.1's mechanism isolated).
func BenchmarkAblationPagePolicy(b *testing.B) {
	policies := []machine.Policy{machine.FirstTouch, machine.RoundRobin, machine.Node0}
	for _, pol := range policies {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mk, err := expt.Makespan(workloads.NewSort(workloads.DefaultSortParams()),
					expt.Config{Cores: 48, Seed: 1, Policy: pol})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(mk), "makespan_cycles")
			}
		})
	}
}

// BenchmarkAblationSpawnCost sweeps the task-creation overhead and reports
// how the fraction of low-parallel-benefit grains tracks it — the knob
// behind every cutoff decision in the paper.
func BenchmarkAblationSpawnCost(b *testing.B) {
	for _, spawn := range []uint64{200, 800, 3200} {
		b.Run(costName(spawn), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				costs := rts.DefaultCosts()
				costs.Spawn = spawn
				inst := workloads.NewFFT(workloads.DefaultFFTParams())
				tr := rts.Run(rts.Config{Program: inst.Name(), Cores: 48, Seed: 1, Costs: costs},
					inst.Program())
				if err := inst.Verify(); err != nil {
					b.Fatal(err)
				}
				rep := metrics.Analyze(tr, nil, nil, metrics.Options{})
				low := 0
				for _, gm := range rep.Grains {
					if gm.ParallelBenefit < 1 {
						low++
					}
				}
				b.ReportMetric(100*float64(low)/float64(len(rep.Grains)), "lowPB_pct")
			}
		})
	}
}

func costName(c uint64) string {
	switch c {
	case 200:
		return "spawn200"
	case 800:
		return "spawn800"
	default:
		return "spawn3200"
	}
}

// BenchmarkAblationMemoryBandwidth toggles the per-node bandwidth model to
// show it is what separates the page policies (without it, first-touch and
// round-robin average to the same latency).
func BenchmarkAblationMemoryBandwidth(b *testing.B) {
	for _, svc := range []uint64{0, 40} {
		name := "contention_on"
		if svc == 0 {
			name = "contention_off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var mk [2]uint64
				for pi, pol := range []machine.Policy{machine.FirstTouch, machine.RoundRobin} {
					cacheCfg := cache.DefaultConfig()
					cacheCfg.MemServiceCycles = svc
					inst := workloads.NewSort(workloads.DefaultSortParams())
					tr := rts.Run(rts.Config{Program: inst.Name(), Cores: 48, Seed: 1,
						Policy: pol, Cache: cacheCfg}, inst.Program())
					if err := inst.Verify(); err != nil {
						b.Fatal(err)
					}
					mk[pi] = tr.Makespan()
				}
				b.ReportMetric(float64(mk[0])/float64(mk[1]), "firsttouch_over_roundrobin_x")
			}
		})
	}
}

// BenchmarkAblationCoreSweep measures Sort's speedup curve across machine
// sizes — the scaling data behind all Figure 1 bars.
func BenchmarkAblationCoreSweep(b *testing.B) {
	for _, cores := range []int{1, 4, 12, 24, 48} {
		b.Run(coreName(cores), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mk, err := expt.Makespan(workloads.NewSort(workloads.DefaultSortParams()),
					expt.Config{Cores: cores, Seed: 1, Policy: machine.RoundRobin})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(mk), "makespan_cycles")
			}
		})
	}
}

func coreName(c int) string {
	names := map[int]string{1: "c1", 4: "c4", 12: "c12", 24: "c24", 48: "c48"}
	return names[c]
}

// BenchmarkAblationIPInterval compares the paper's two default interval
// choices for instantaneous parallelism (median vs minimum grain length).
func BenchmarkAblationIPInterval(b *testing.B) {
	inst := workloads.NewSort(workloads.DefaultSortParams())
	tr := rts.Run(rts.Config{Program: inst.Name(), Cores: 48, Seed: 1}, inst.Program())
	if err := inst.Verify(); err != nil {
		b.Fatal(err)
	}
	grains := tr.Grains()
	choices := []struct {
		name     string
		interval profile.Time
	}{
		{"median_grain", metrics.MedianGrainLength(grains)},
		{"min_grain", metrics.MinGrainLength(grains)},
	}
	for _, ch := range choices {
		b.Run(ch.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := metrics.Analyze(tr, nil, nil, metrics.Options{Interval: ch.interval})
				low := 0
				for _, gm := range rep.Grains {
					if gm.InstParallelism < 48 {
						low++
					}
				}
				b.ReportMetric(100*float64(low)/float64(len(rep.Grains)), "lowIP_pct")
				b.ReportMetric(float64(rep.IntervalSize), "interval_cycles")
			}
		})
	}
}
