// Package graingraph is a from-scratch Go reproduction of "Grain Graphs:
// OpenMP Performance Analysis Made Easy" (Muddukrishna, Jonsson, Podobas,
// Brorsson — PPoPP 2016): a grain-level performance-analysis method for
// task- and loop-parallel programs, together with every substrate the
// paper's evaluation depends on, rebuilt as a simulated 48-core NUMA
// machine, an OpenMP-like tasking runtime, the paper's benchmark programs
// (bugs included), and a native goroutine executor.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-versus-measured record of every table and
// figure. The root-level benchmarks (bench_test.go) regenerate each one:
//
//	go test -bench=. -benchtime=1x .
package graingraph
