#!/usr/bin/env bash
# Smoke test for the grainserved artifact server: build everything, record a
# real fixture artifact, start a server, upload the fixture, and verify every
# endpoint serves bytes identical to the grainview CLI's output for the same
# artifact. Finishes with a short grainload run against the live server.
#
# Usage: scripts/server_smoke.sh   (from the repo root)
set -euo pipefail

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/grainview" ./cmd/grainview
go build -o "$tmp/grainserved" ./cmd/grainserved
go build -o "$tmp/grainload" ./cmd/grainload
go build -o "$tmp/grainbench" ./cmd/grainbench

echo "== record fixture artifact"
fixture="$tmp/fixture.ggp"
"$tmp/grainview" -workload fib -record "$fixture" -summary >/dev/null 2>&1

echo "== reference renderings via grainview"
"$tmp/grainview" -summary "$fixture" >"$tmp/summary.cli"
"$tmp/grainview" -highlight "$fixture" >"$tmp/highlight.cli"
# With -o, the what-if table goes to stdout while the export goes to the file.
"$tmp/grainview" -whatif rank -o "$tmp/ignored.dot" "$fixture" >"$tmp/whatif.cli" 2>/dev/null
"$tmp/grainview" -window depth=2,top=8 -format dot "$fixture" >"$tmp/window.cli" 2>/dev/null
query='from grains | filter exec > 0 | groupby loc | agg count, sum(exec), mean(benefit) | sort sum_exec desc | topk 5'
"$tmp/grainview" -query "$query" "$fixture" >"$tmp/query.cli"

echo "== columnar v2: convert and diff against v1 analysis"
"$tmp/grainbench" -ggpconv "$fixture" -ggpconv-out "$tmp/fixture.v2.ggp" 2>/dev/null
v2diff() {
    local label=$1; shift
    "$tmp/grainview" "$@" "$fixture" >"$tmp/v1.out" 2>/dev/null
    "$tmp/grainview" "$@" "$tmp/fixture.v2.ggp" >"$tmp/v2.out" 2>/dev/null
    if ! diff -q "$tmp/v1.out" "$tmp/v2.out" >/dev/null; then
        echo "FAIL: v1 vs v2 artifact output differs for: $label" >&2
        diff "$tmp/v1.out" "$tmp/v2.out" | head -20 >&2
        exit 1
    fi
}
v2diff summary -summary
v2diff highlight -highlight
v2diff window -window depth=2,top=8 -format dot
v2diff query -query "$query"
echo "   v1 -> v2 convert: analysis byte-identical"

echo "== start grainserved"
addr=127.0.0.1:18080
"$tmp/grainserved" -listen "$addr" -store "$tmp/store" -debug 2>"$tmp/server.log" &
server_pid=$!
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

echo "== upload artifact"
id=$(curl -fsS -X POST --data-binary @"$fixture" "http://$addr/artifacts" |
    sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
[ -n "$id" ] || { echo "upload returned no id" >&2; exit 1; }
echo "   id: $id"

echo "== endpoint bytes vs grainview CLI"
curl -fsS "http://$addr/artifacts/$id/summary" >"$tmp/summary.srv"
curl -fsS "http://$addr/artifacts/$id/highlight" >"$tmp/highlight.srv"
curl -fsS "http://$addr/artifacts/$id/whatif" >"$tmp/whatif.srv"
curl -fsS "http://$addr/artifacts/$id/window?depth=2&top=8&format=dot" >"$tmp/window.srv"
curl -fsS --get --data-urlencode "q=$query" "http://$addr/artifacts/$id/query" >"$tmp/query.srv"
for ep in summary highlight whatif window query; do
    if ! diff -q "$tmp/$ep.cli" "$tmp/$ep.srv" >/dev/null; then
        echo "FAIL: $ep endpoint differs from grainview output:" >&2
        diff "$tmp/$ep.cli" "$tmp/$ep.srv" | head -20 >&2
        exit 1
    fi
    echo "   $ep: byte-identical"
done

echo "== malformed query is a structured 400"
code=$(curl -s -o "$tmp/badq.json" -w '%{http_code}' --get --data-urlencode "q=bogus nonsense" "http://$addr/artifacts/$id/query")
[ "$code" = 400 ] || { echo "FAIL: malformed query returned $code, want 400" >&2; exit 1; }
grep -q '"error": *"bad-query"' "$tmp/badq.json" || { echo "FAIL: 400 body not structured: $(cat "$tmp/badq.json")" >&2; exit 1; }
echo "   query 400: structured"

echo "== repeated upload is a memo hit"
second=$(curl -fsS -X POST --data-binary @"$fixture" "http://$addr/artifacts")
echo "$second" | grep -q '"existed": *true' || { echo "FAIL: re-upload not recognized: $second" >&2; exit 1; }

echo "== grainload smoke (2s at 50 req/s)"
"$tmp/grainload" -server "http://$addr" -artifact "$fixture" \
    -rate 50 -duration 2s -c 4 -tenants 2

echo "== grainload cold-path smoke (2s, serialized, evict before each request)"
"$tmp/grainload" -server "http://$addr" -artifact "$fixture" \
    -cold -duration 2s -tenants 2

echo "== stored artifact upgraded in place to columnar v2"
stored="$tmp/store/$id.ggp"
ver=$(od -An -j4 -N1 -tu1 "$stored" | tr -d ' ')
[ "$ver" = 2 ] || { echo "FAIL: stored artifact version byte is $ver, want 2" >&2; exit 1; }
echo "   $id.ggp: version 2"

echo "== statsz"
curl -fsS "http://$addr/statsz" | head -30
echo "server smoke: OK"
