#!/usr/bin/env bash
# Smoke test for the grainserved artifact server: build everything, record a
# real fixture artifact, start a server, upload the fixture, and verify every
# endpoint serves bytes identical to the grainview CLI's output for the same
# artifact. Finishes with a short grainload run against the live server.
#
# Usage: scripts/server_smoke.sh   (from the repo root)
set -euo pipefail

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/grainview" ./cmd/grainview
go build -o "$tmp/grainserved" ./cmd/grainserved
go build -o "$tmp/grainload" ./cmd/grainload

echo "== record fixture artifact"
fixture="$tmp/fixture.ggp"
"$tmp/grainview" -workload fib -record "$fixture" -summary >/dev/null 2>&1

echo "== reference renderings via grainview"
"$tmp/grainview" -summary "$fixture" >"$tmp/summary.cli"
"$tmp/grainview" -highlight "$fixture" >"$tmp/highlight.cli"
# With -o, the what-if table goes to stdout while the export goes to the file.
"$tmp/grainview" -whatif rank -o "$tmp/ignored.dot" "$fixture" >"$tmp/whatif.cli" 2>/dev/null
"$tmp/grainview" -window depth=2,top=8 -format dot "$fixture" >"$tmp/window.cli" 2>/dev/null
query='from grains | filter exec > 0 | groupby loc | agg count, sum(exec), mean(benefit) | sort sum_exec desc | topk 5'
"$tmp/grainview" -query "$query" "$fixture" >"$tmp/query.cli"

echo "== start grainserved"
addr=127.0.0.1:18080
"$tmp/grainserved" -listen "$addr" -store "$tmp/store" 2>"$tmp/server.log" &
server_pid=$!
for _ in $(seq 1 100); do
    curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

echo "== upload artifact"
id=$(curl -fsS -X POST --data-binary @"$fixture" "http://$addr/artifacts" |
    sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p')
[ -n "$id" ] || { echo "upload returned no id" >&2; exit 1; }
echo "   id: $id"

echo "== endpoint bytes vs grainview CLI"
curl -fsS "http://$addr/artifacts/$id/summary" >"$tmp/summary.srv"
curl -fsS "http://$addr/artifacts/$id/highlight" >"$tmp/highlight.srv"
curl -fsS "http://$addr/artifacts/$id/whatif" >"$tmp/whatif.srv"
curl -fsS "http://$addr/artifacts/$id/window?depth=2&top=8&format=dot" >"$tmp/window.srv"
curl -fsS --get --data-urlencode "q=$query" "http://$addr/artifacts/$id/query" >"$tmp/query.srv"
for ep in summary highlight whatif window query; do
    if ! diff -q "$tmp/$ep.cli" "$tmp/$ep.srv" >/dev/null; then
        echo "FAIL: $ep endpoint differs from grainview output:" >&2
        diff "$tmp/$ep.cli" "$tmp/$ep.srv" | head -20 >&2
        exit 1
    fi
    echo "   $ep: byte-identical"
done

echo "== malformed query is a structured 400"
code=$(curl -s -o "$tmp/badq.json" -w '%{http_code}' --get --data-urlencode "q=bogus nonsense" "http://$addr/artifacts/$id/query")
[ "$code" = 400 ] || { echo "FAIL: malformed query returned $code, want 400" >&2; exit 1; }
grep -q '"error": *"bad-query"' "$tmp/badq.json" || { echo "FAIL: 400 body not structured: $(cat "$tmp/badq.json")" >&2; exit 1; }
echo "   query 400: structured"

echo "== repeated upload is a memo hit"
second=$(curl -fsS -X POST --data-binary @"$fixture" "http://$addr/artifacts")
echo "$second" | grep -q '"existed": *true' || { echo "FAIL: re-upload not recognized: $second" >&2; exit 1; }

echo "== grainload smoke (2s at 50 req/s)"
"$tmp/grainload" -server "http://$addr" -artifact "$fixture" \
    -rate 50 -duration 2s -c 4 -tenants 2

echo "== statsz"
curl -fsS "http://$addr/statsz" | head -30
echo "server smoke: OK"
