// native profiles a real Go computation — no simulation — on the native
// work-stealing executor and builds its grain graph from wall-clock
// timestamps, demonstrating the paper's point that grain graphs are
// "independent of profiling method".
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"graingraph/internal/core"
	"graingraph/internal/exec"
	"graingraph/internal/export"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
)

func main() {
	// A real divide-and-conquer mergesort over real data.
	data := make([]int, 1<<18)
	for i := range data {
		data[i] = (i * 2654435761) % (1 << 20)
	}
	tmp := make([]int, len(data))

	var msort func(c exec.Ctx, lo, hi int)
	msort = func(c exec.Ctx, lo, hi int) {
		if hi-lo <= 1<<13 {
			sort.Ints(data[lo:hi])
			return
		}
		mid := (lo + hi) / 2
		c.Spawn(profile.Loc("main.go", 33, "msort"), func(c exec.Ctx) { msort(c, lo, mid) })
		c.Spawn(profile.Loc("main.go", 34, "msort"), func(c exec.Ctx) { msort(c, mid, hi) })
		c.TaskWait()
		merge(data, tmp, lo, mid, hi)
	}

	// Baseline on one worker for work deviation, then the parallel run.
	runIt := func(workers int) *profile.Trace {
		for i := range data {
			data[i] = (i * 2654435761) % (1 << 20)
		}
		return exec.Run(exec.Config{Program: "native-msort", Workers: workers},
			func(c exec.Ctx) { msort(c, 0, len(data)) })
	}
	baseline := runIt(1)
	trace := runIt(0) // GOMAXPROCS workers

	for i := 1; i < len(data); i++ {
		if data[i-1] > data[i] {
			log.Fatalf("not sorted at %d", i)
		}
	}
	fmt.Printf("sorted %d ints on %d workers: %.2fms (1 worker: %.2fms)\n",
		len(data), trace.Cores,
		float64(trace.Makespan())/1e6, float64(baseline.Makespan())/1e6)

	g := core.Build(trace)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}
	rep := metrics.Analyze(trace, g, baseline, metrics.Options{})
	fmt.Printf("grains: %d, critical path %.2fms (%.1f%% of makespan)\n",
		trace.NumGrains(), float64(rep.CriticalPathLength)/1e6,
		100*float64(rep.CriticalPathLength)/float64(trace.Makespan()))

	lowPB := 0
	for _, gm := range rep.Grains {
		if gm.ParallelBenefit < 1 {
			lowPB++
		}
	}
	fmt.Printf("grains with parallel benefit < 1: %d — candidates for a higher cutoff\n", lowPB)

	core.Layout(g)
	f, err := os.Create("native-msort.graphml")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := export.GraphML(f, g, nil, export.ViewCritical); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote native-msort.graphml (critical-path view)")
}

func merge(d, t []int, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if d[i] <= d[j] {
			t[k] = d[i]
			i++
		} else {
			t[k] = d[j]
			j++
		}
		k++
	}
	copy(t[k:hi], d[i:mid])
	copy(t[k:hi], d[j:hi])
	copy(d[lo:hi], t[lo:hi])
}
