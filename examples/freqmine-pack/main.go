// freqmine-pack reproduces the paper's §4.3.4 resource optimization:
// Freqmine's FPGF loop is inherently imbalanced (a handful of huge grains
// spaced irregularly across the iteration range), so instead of fighting
// the load balance, compute the minimum number of cores that preserves the
// makespan — the paper's Gecode bin-packing step — and release the rest.
package main

import (
	"fmt"
	"log"
	"sort"

	"graingraph/internal/binpack"
	"graingraph/internal/expt"
	"graingraph/internal/metrics"
	"graingraph/internal/workloads"
)

func main() {
	res, err := expt.Run(workloads.NewFreqmine(workloads.DefaultFreqmineParams()),
		expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Find the dominant FPGF instance and its chunk-size distribution.
	totals := map[int]uint64{}
	for _, ck := range res.Trace.Chunks {
		totals[int(ck.Loop)] += ck.Duration()
	}
	dominant := 0
	for id, t := range totals {
		if t > totals[dominant] {
			dominant = id
		}
	}
	var durations []uint64
	for _, ck := range res.Trace.Chunks {
		if int(ck.Loop) == dominant {
			durations = append(durations, ck.Duration())
		}
	}
	sorted := append([]uint64{}, durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	fmt.Printf("dominant FPGF instance: %d chunks; largest five: %v\n", len(durations), sorted[:5])
	fmt.Printf("median chunk: %d cycles — disproportionate sizes, irregularly spaced\n",
		sorted[len(sorted)/2])

	lb := metrics.LoopLoadBalance(res.Trace, res.Trace.Loops[dominant].ID)
	fmt.Printf("load balance on 48 cores: %.1f (threshold 1)\n\n", lb)

	// Bin-pack into the observed makespan.
	loop := res.Trace.Loops[dominant]
	capacity := uint64(loop.End - loop.Start)
	packed := binpack.Pack(durations, capacity)
	fmt.Printf("bin-packing %d chunks into %d-cycle bins: %d cores suffice (optimal proven: %v)\n",
		len(durations), capacity, packed.Bins, packed.Optimal)

	// Re-run with num_threads(minCores) on the dominant instance.
	p := workloads.DefaultFreqmineParams()
	p.NumThreads = packed.Bins
	reduced, err := expt.Run(workloads.NewFreqmine(p), expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	totals2 := map[int]uint64{}
	for _, ck := range reduced.Trace.Chunks {
		totals2[int(ck.Loop)] += ck.Duration()
	}
	dominant2 := 0
	for id, t := range totals2 {
		if t > totals2[dominant2] {
			dominant2 = id
		}
	}
	lb2 := metrics.LoopLoadBalance(reduced.Trace, reduced.Trace.Loops[dominant2].ID)
	fmt.Printf("\nwith num_threads(%d) on the dominant instance:\n", packed.Bins)
	fmt.Printf("load balance: %.2f (was %.1f)\n", lb2, lb)
	fmt.Printf("makespan: %d cycles vs %d on all 48 cores — %d cores freed for other work\n",
		reduced.Trace.Makespan(), res.Trace.Makespan(), 48-packed.Bins)
}
