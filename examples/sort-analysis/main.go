// sort-analysis walks the paper's §4.3.1 Sort investigation end to end:
//
//  1. The thread timeline (what existing tools show) reports load imbalance
//     and nothing else.
//  2. The grain graph's instantaneous-parallelism view shows the real cause:
//     waxing-and-waning parallelism that dips below the 48 cores.
//  3. Lowering cutoffs backfires: grains lose their parallel benefit.
//  4. Work deviation pinpoints NUMA work inflation; round-robin page
//     placement reduces it and improves the makespan.
package main

import (
	"fmt"
	"log"
	"os"

	"graingraph/internal/expt"
	"graingraph/internal/highlight"
	"graingraph/internal/machine"
	"graingraph/internal/timeline"
	"graingraph/internal/workloads"
)

func main() {
	// Step 1+2: profile with the best cutoffs.
	res, err := expt.Run(workloads.NewSort(workloads.DefaultSortParams()),
		expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== what a conventional tool shows ==")
	v := timeline.FromTrace(res.Trace)
	fmt.Printf("load imbalance (max/mean busy): %.2f — and no way to see why\n\n", v.LoadImbalance())

	fmt.Println("== what the grain graph shows ==")
	lowIP := res.Assessment.Affected(highlight.LowParallelism)
	fmt.Printf("%.1f%% of %d grains execute under instantaneous parallelism < 48\n",
		100*lowIP, res.Trace.NumGrains())
	fmt.Println("parallelism over time (waxing and waning):")
	printSpark(res.Report.Timeline, 48)

	// Step 3: the tempting fix — more, smaller grains — does not pay.
	lowered := workloads.DefaultSortParams()
	lowered.SeqCutoff /= 128
	lowered.MergeCutoff /= 128
	low, err := expt.Run(workloads.NewSort(lowered), expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlowered cutoffs: %d grains, %.1f%% with parallel benefit < 1, makespan %d (was %d)\n",
		low.Trace.NumGrains(),
		100*low.Assessment.Affected(highlight.LowParallelBenefit),
		low.Trace.Makespan(), res.Trace.Makespan())

	// Step 4: the real fix — round-robin page placement.
	fmt.Println("\n== NUMA page placement (work deviation view) ==")
	for _, pol := range []machine.Policy{machine.FirstTouch, machine.RoundRobin} {
		r, err := expt.Run(workloads.NewSort(workloads.DefaultSortParams()),
			expt.Config{Cores: 48, Seed: 1, Policy: pol, Baseline: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s work inflation %.1f%%  poor MHU %.1f%%  makespan %d\n",
			pol,
			100*r.Assessment.Affected(highlight.WorkInflation),
			100*r.Assessment.Affected(highlight.PoorUtilization),
			r.Trace.Makespan())
	}
	fmt.Fprintln(os.Stderr, "\n(lowered-cutoff and page-policy sections each re-run the full sort)")
}

func printSpark(series []int, cores int) {
	marks := []byte(" .:-=+*#%@")
	buckets := 72
	if len(series) < buckets {
		buckets = len(series)
	}
	out := make([]byte, buckets)
	for b := 0; b < buckets; b++ {
		lo, hi := b*len(series)/buckets, (b+1)*len(series)/buckets
		if hi == lo {
			hi = lo + 1
		}
		sum := 0
		for i := lo; i < hi; i++ {
			sum += series[i]
		}
		idx := int(float64(sum) / float64(hi-lo) / float64(cores) * float64(len(marks)-1))
		if idx >= len(marks) {
			idx = len(marks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		out[b] = marks[idx]
	}
	fmt.Printf("|%s|\n", out)
}
