// Quickstart: profile a task-parallel Fibonacci on the simulated 48-core
// machine, build its grain graph, derive the paper's metrics, and export a
// yEd-viewable GraphML file with problem highlighting.
package main

import (
	"fmt"
	"log"
	"os"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/highlight"
	"graingraph/internal/metrics"
	"graingraph/internal/profile"
	"graingraph/internal/rts"
)

func main() {
	// 1. Write an OpenMP-style task program against the rts API.
	var fib func(c rts.Ctx, n int) uint64
	fib = func(c rts.Ctx, n int) uint64 {
		if n < 2 {
			c.Compute(10)
			return uint64(n)
		}
		if n < 12 { // cutoff: run small subtrees serially
			c.Compute(uint64(1) << uint(n-8) * 100)
			a, b := serialFib(n-1), serialFib(n-2)
			return a + b
		}
		var a, b uint64
		c.Spawn(profile.Loc("main.go", 24, "fib"), func(c rts.Ctx) { a = fib(c, n-1) })
		c.Spawn(profile.Loc("main.go", 25, "fib"), func(c rts.Ctx) { b = fib(c, n-2) })
		c.TaskWait()
		return a + b
	}

	var result uint64
	program := func(c rts.Ctx) { result = fib(c, 24) }

	// 2. Run it on the simulated machine (and once on 1 core as the work-
	//    deviation baseline).
	baseline := rts.Run(rts.Config{Program: "fib", Cores: 1, Seed: 1}, program)
	trace := rts.Run(rts.Config{Program: "fib", Cores: 48, Seed: 1}, program)
	fmt.Printf("fib(24) = %d across %d grains, makespan %d cycles (%.1fx speedup)\n",
		result, trace.NumGrains(), trace.Makespan(),
		float64(baseline.Makespan())/float64(trace.Makespan()))

	// 3. Build the grain graph and derive the metrics.
	graph := core.Build(trace)
	report := metrics.Analyze(trace, graph, baseline, metrics.Options{})
	assessment := highlight.Evaluate(report, highlight.Defaults(48, 12))

	for _, row := range assessment.Summarize().Rows {
		fmt.Printf("%-36s %4d grains (%.1f%%)\n", row.Problem, row.Count, 100*row.Affected)
	}

	// 4. Export for yEd: problems coloured red-to-yellow, rest dimmed.
	core.Layout(graph)
	f, err := os.Create("fib-grains.graphml")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := export.GraphML(f, graph, assessment, export.ViewParallelBenefit); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote fib-grains.graphml (open in yEd; parallel-benefit view)")
}

func serialFib(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return serialFib(n-1) + serialFib(n-2)
}
