// kdtree-bug reproduces the paper's §2 discovery: 376.kdtree's cutoff has
// no effect because kdnode::sweeptree() forgets to increment the recursion
// depth — a bug that "escaped both the programmer and SPEC quality control
// for over three years" and that the grain graph reveals at a glance.
package main

import (
	"fmt"
	"log"
	"os"

	"graingraph/internal/core"
	"graingraph/internal/export"
	"graingraph/internal/expt"
	"graingraph/internal/workloads"
)

func main() {
	fmt.Println("== 376.kdtree, SPEC small input, cutoff 2 ==")

	buggy, err := expt.Run(workloads.NewKdTree(workloads.DefaultKdTreeParams()),
		expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report(buggy, "original (missing depth increment)")

	fixed, err := expt.Run(workloads.NewKdTree(workloads.FixedKdTreeParams()),
		expt.Config{Cores: 48, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report(fixed, "fixed (depth incremented, separate sweep cutoff)")

	// The performance consequence at evaluation scale, measured against a
	// common serial baseline (the fixed program on one core), as in the
	// paper's Figure 1.
	baseT1, err := expt.Makespan(workloads.NewKdTree(workloads.PerfKdTreeParams(true)),
		expt.Config{Cores: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, fixedVariant := range []bool{false, true} {
		t48, err := expt.Makespan(workloads.NewKdTree(workloads.PerfKdTreeParams(fixedVariant)),
			expt.Config{Cores: 48, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		name := "buggy"
		if fixedVariant {
			name = "fixed"
		}
		fmt.Printf("48-core speedup over serial, %s: %.1f\n", name, float64(baseT1)/float64(t48))
	}

	// Export the buggy graph: the runaway recursion is immediately visible
	// as an ever-deepening chain of task columns.
	g := buggy.Graph
	core.Layout(g)
	f, err := os.Create("kdtree-buggy.graphml")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := export.GraphML(f, g, buggy.Assessment, export.ViewStructure); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote kdtree-buggy.graphml — the Figure 2 view")
}

func report(r *expt.Result, label string) {
	maxDepth := 0
	for _, t := range r.Trace.Tasks {
		if t.Depth > maxDepth {
			maxDepth = t.Depth
		}
	}
	fmt.Printf("%-48s grains=%4d  max task depth=%2d  makespan=%d\n",
		label, r.Trace.NumGrains(), maxDepth, r.Trace.Makespan())
}
